// Unit tests for src/common and src/core primitives.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bitvec.h"
#include "common/math.h"
#include "common/prng.h"
#include "core/interval.h"
#include "core/system.h"
#include "core/verifier.h"

namespace renaming {
namespace {

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
  EXPECT_EQ(ceil_log2(1ULL << 62), 62u);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2((1ULL << 40) + 17), 40u);
}

TEST(Math, ProtocolLogNeverZero) {
  EXPECT_GE(protocol_log(1), 1u);
  EXPECT_GE(protocol_log(2), 1u);
  EXPECT_EQ(protocol_log(1024), 10u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(Prng, DeterministicStreams) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    EXPECT_EQ(va, vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Prng, BelowIsInRangeAndCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, ChanceExtremesAndBias) {
  Xoshiro256 rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(BitVec, SetTestCount) {
  BitVec b(200);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.set(63, false);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(BitVec, CountRangeMatchesNaive) {
  Xoshiro256 rng(99);
  BitVec b(517);
  std::vector<bool> ref(517, false);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t pos = rng.below(517);
    b.set(pos);
    ref[pos] = true;
  }
  for (int trial = 0; trial < 500; ++trial) {
    std::uint64_t lo = rng.below(517);
    std::uint64_t hi = rng.below(517);
    if (lo > hi) std::swap(lo, hi);
    std::uint64_t expect = 0;
    for (std::uint64_t i = lo; i <= hi; ++i) expect += ref[i];
    ASSERT_EQ(b.count_range(lo, hi), expect) << lo << ".." << hi;
  }
}

TEST(BitVec, RankIsPrefixCount) {
  BitVec b(130);
  b.set(0);
  b.set(5);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.rank(0), 0u);
  EXPECT_EQ(b.rank(1), 1u);
  EXPECT_EQ(b.rank(5), 1u);
  EXPECT_EQ(b.rank(6), 2u);
  EXPECT_EQ(b.rank(65), 3u);
  EXPECT_EQ(b.rank(130), 4u);
}

TEST(BitVec, NextSetFindsEverySetBitInOrder) {
  BitVec b(300);
  const std::vector<std::uint64_t> set_bits = {0, 1, 63, 64, 65, 128, 299};
  for (std::uint64_t i : set_bits) b.set(i);
  // Walking via next_set enumerates exactly the set bits, in order.
  std::vector<std::uint64_t> walked;
  for (std::uint64_t i = b.next_set(0); i < 300; i = b.next_set(i + 1)) {
    walked.push_back(i);
  }
  EXPECT_EQ(walked, set_bits);
  // From-positions inside gaps land on the next set bit.
  EXPECT_EQ(b.next_set(2), 63u);
  EXPECT_EQ(b.next_set(66), 128u);
  EXPECT_EQ(b.next_set(129), 299u);
  // Past the last set bit (and past the end): size() sentinel.
  EXPECT_EQ(b.next_set(300), 300u);
  EXPECT_EQ(b.next_set(1000), 300u);
  EXPECT_EQ(BitVec(128).next_set(0), 128u);  // all-zero vector
}

TEST(BitVec, NextSetMatchesNaiveScan) {
  Xoshiro256 rng(100);
  BitVec b(517);
  std::vector<bool> ref(517, false);
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t pos = rng.below(517);
    b.set(pos);
    ref[pos] = true;
  }
  for (std::uint64_t from = 0; from <= 517; ++from) {
    std::uint64_t expect = 517;
    for (std::uint64_t i = from; i < 517; ++i) {
      if (ref[i]) {
        expect = i;
        break;
      }
    }
    ASSERT_EQ(b.next_set(from), expect) << "from=" << from;
  }
}

TEST(Interval, BotTopPartition) {
  const Interval i(1, 10);
  EXPECT_EQ(i.bot(), Interval(1, 5));
  EXPECT_EQ(i.top(), Interval(6, 10));
  const Interval odd(3, 9);  // size 7 -> bot [3,6], top [7,9]
  EXPECT_EQ(odd.bot(), Interval(3, 6));
  EXPECT_EQ(odd.top(), Interval(7, 9));
  EXPECT_EQ(odd.bot().size() + odd.top().size(), odd.size());
}

TEST(Interval, SubsetDisjointContains) {
  const Interval i(4, 8);
  EXPECT_TRUE(Interval(5, 6).subset_of(i));
  EXPECT_TRUE(i.subset_of(i));
  EXPECT_FALSE(Interval(3, 5).subset_of(i));
  EXPECT_TRUE(Interval(1, 3).disjoint_from(i));
  EXPECT_TRUE(Interval(9, 12).disjoint_from(i));
  EXPECT_FALSE(Interval(8, 12).disjoint_from(i));
  EXPECT_TRUE(i.contains(4));
  EXPECT_TRUE(i.contains(8));
  EXPECT_FALSE(i.contains(9));
}

TEST(Interval, TreeDescentReachesEverySingleton) {
  // Every leaf [i,i] of the tree over [1, n] is reachable and tree_depth
  // is at most ceil(log2 n).
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 7ULL, 8ULL, 13ULL, 64ULL, 100ULL}) {
    const Interval root(1, n);
    for (std::uint64_t x = 1; x <= n; ++x) {
      const std::uint32_t d = tree_depth(root, Interval(x, x));
      EXPECT_LE(d, ceil_log2(n) + 1) << "n=" << n << " x=" << x;
    }
  }
}

TEST(SystemConfig, RandomIdsAreUniqueAndInRange) {
  const auto cfg = SystemConfig::random(500, 500 * 500, 1);
  ASSERT_EQ(cfg.ids.size(), 500u);
  std::unordered_set<OriginalId> seen(cfg.ids.begin(), cfg.ids.end());
  EXPECT_EQ(seen.size(), 500u);
  for (OriginalId id : cfg.ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 500u * 500u);
  }
}

TEST(SystemConfig, ClusteredIdsAreUniqueAndInRange) {
  const auto cfg = SystemConfig::clustered(300, 90000, 2, 4);
  ASSERT_EQ(cfg.ids.size(), 300u);
  std::unordered_set<OriginalId> seen(cfg.ids.begin(), cfg.ids.end());
  EXPECT_EQ(seen.size(), 300u);
  for (OriginalId id : cfg.ids) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 90000u);
  }
}

TEST(SystemConfig, DeterministicGivenSeed) {
  const auto a = SystemConfig::random(100, 10000, 77);
  const auto b = SystemConfig::random(100, 10000, 77);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(Verifier, AcceptsPerfectRenaming) {
  std::vector<NodeOutcome> o = {
      {10, NewId{1}, true}, {20, NewId{2}, true}, {30, NewId{3}, true}};
  const auto r = verify_renaming(o, 3);
  EXPECT_TRUE(r.ok(true));
  EXPECT_TRUE(r.order_preserving);
}

TEST(Verifier, DetectsDuplicate) {
  std::vector<NodeOutcome> o = {
      {10, NewId{1}, true}, {20, NewId{1}, true}, {30, NewId{3}, true}};
  const auto r = verify_renaming(o, 3);
  EXPECT_FALSE(r.unique);
  EXPECT_FALSE(r.ok());
}

TEST(Verifier, DetectsOutOfRange) {
  std::vector<NodeOutcome> o = {{10, NewId{4}, true}, {20, NewId{2}, true}};
  const auto r = verify_renaming(o, 2);
  EXPECT_FALSE(r.strong);
}

TEST(Verifier, DetectsOrderViolationButOkWithoutOrderRequirement) {
  std::vector<NodeOutcome> o = {{10, NewId{2}, true}, {20, NewId{1}, true}};
  const auto r = verify_renaming(o, 2);
  EXPECT_FALSE(r.order_preserving);
  EXPECT_TRUE(r.ok(false));
  EXPECT_FALSE(r.ok(true));
}

TEST(Verifier, IgnoresByzantineAndCrashedOutputs) {
  std::vector<NodeOutcome> o = {
      {10, NewId{1}, true},
      {20, NewId{1}, false},  // Byzantine claims a duplicate: ignored
      {30, std::nullopt, false},
  };
  const auto r = verify_renaming(o, 3);
  EXPECT_TRUE(r.ok());
}

TEST(Verifier, FlagsUndecidedCorrectNode) {
  std::vector<NodeOutcome> o = {{10, std::nullopt, true}};
  const auto r = verify_renaming(o, 1);
  EXPECT_FALSE(r.all_correct_decided);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace renaming
