// Proof that the invariant layer is alive in the default build.
//
// The repo's default build type is RelWithDebInfo, where NDEBUG erases
// assert(); these death tests demonstrate that RENAMING_CHECK still fires
// there — a violated engine invariant aborts instead of silently corrupting
// the statistics the paper's theorems are checked against. Built with
// RENAMING_UNCHECKED (the benchmark-only `release` preset) the checks are
// compiled out and the death tests are skipped.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/check.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "sim/node.h"

namespace renaming::sim {
namespace {

constexpr MsgKind kPing = 3;

class QuietNode : public Node {
 public:
  void send(Round, Outbox&) override {}
  void receive(Round, InboxView) override {}
  bool done() const override { return true; }
};

#if defined(RENAMING_UNCHECKED)

TEST(CheckInvariants, SkippedInUncheckedBuilds) {
  GTEST_SKIP() << "RENAMING_UNCHECKED build: invariants are compiled out";
}

#else  // the default: checks are live in every build type

std::vector<std::unique_ptr<Node>> quiet_system(NodeIndex n) {
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeIndex v = 0; v < n; ++v) nodes.push_back(std::make_unique<QuietNode>());
  return nodes;
}

TEST(CheckInvariantsDeathTest, EngineRejectsEmptySystems) {
  EXPECT_DEATH(Engine(std::vector<std::unique_ptr<Node>>{}),
               "at least one node");
}

TEST(CheckInvariantsDeathTest, MarkByzantineOutOfRangeAborts) {
  Engine engine(quiet_system(3));
  EXPECT_DEATH(engine.mark_byzantine(3), "out of range");
}

// A node that bypasses Outbox::send and plants a raw entry with a forged
// transport origin. Outbox::entries() exists for the engine and the crash
// adversary; a protocol (or a future refactor) writing through it would
// sidestep the origin stamping that Theorem 1.3's authentication relies
// on. The engine's delivery-phase invariant must catch it.
class TamperingNode final : public QuietNode {
 public:
  void send(Round, Outbox& out) override {
    Message m = make_message(kPing, 8, std::uint64_t{0});
    m.sender = 999;  // forged true-origin field, not just claimed_sender
    m.claimed_sender = 999;
    out.entries().emplace_back(0, m);
  }
  bool done() const override { return false; }
};

TEST(CheckInvariantsDeathTest, ForgedTrueOriginAbortsDelivery) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<TamperingNode>());
  nodes.push_back(std::make_unique<QuietNode>());
  Engine engine(std::move(nodes));
  EXPECT_DEATH(engine.run(1), "engine stamps the true origin");
}

// Same bypass, zero declared wire size: bit-complexity accounting would
// silently undercount, so the engine must refuse to deliver it.
class FreeRiderNode final : public QuietNode {
 public:
  void send(Round, Outbox& out) override {
    Message m;
    m.kind = kPing;
    m.bits = 0;
    m.sender = 0;
    m.claimed_sender = 0;
    out.entries().emplace_back(1, m);
  }
  bool done() const override { return false; }
};

TEST(CheckInvariantsDeathTest, UndeclaredWireSizeAbortsDelivery) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<FreeRiderNode>());
  nodes.push_back(std::make_unique<QuietNode>());
  Engine engine(std::move(nodes));
  EXPECT_DEATH(engine.run(1), "wire size");
}

TEST(CheckInvariantsDeathTest, OutboxRejectsOutOfRangeDestination) {
  Outbox out(0, 2);
  EXPECT_DEATH(out.send(2, make_message(kPing, 8)), "outside the system");
}

TEST(CheckInvariantsDeathTest, AdversaryCrashingUnknownNodeAborts) {
  class RogueAdversary final : public CrashAdversary {
   public:
    std::vector<CrashOrder> decide(const AdversaryView&) override {
      CrashOrder o;
      o.victim = 17;  // outside a 2-node system
      return {o};
    }
    std::uint64_t budget() const override { return 1; }
  };
  class BusyNode final : public QuietNode {
   public:
    bool done() const override { return false; }
  };
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<BusyNode>());
  nodes.push_back(std::make_unique<BusyNode>());
  Engine engine(std::move(nodes), std::make_unique<RogueAdversary>());
  EXPECT_DEATH(engine.run(1), "outside the system");
}

TEST(CheckInvariantsDeathTest, BitVecBoundsAreCheckedInEveryBuild) {
  BitVec bits(64);
  EXPECT_DEATH(bits.test(64), "out of range");
  EXPECT_DEATH(bits.set(64), "out of range");
  EXPECT_DEATH(bits.count_range(8, 64), "out of range");
}

TEST(CheckInvariants, PassingChecksAreSideEffectFree) {
  // RENAMING_CHECK must evaluate its condition exactly once when it holds.
  int evaluations = 0;
  auto holds = [&] {
    ++evaluations;
    return true;
  };
  RENAMING_CHECK(holds(), "never fires");
  EXPECT_EQ(evaluations, 1);
}

#endif  // RENAMING_UNCHECKED

}  // namespace
}  // namespace renaming::sim
