// Closed-form baseline accounting (docs/PERFORMANCE.md §10): past the
// closed_form_cutoff, a failure-free CHT/OBG run is computed rather than
// simulated. The contract is EXACT equivalence — RunStats, outcomes,
// verification report and every telemetry ledger must be bit-identical to
// the simulated run, so the million-node BENCH cells and their Theorem
// audit gates (obs/budget.h) rest on accounting the engine itself would
// have produced. These tests force the cutoff down to 1 at small n and
// diff the two paths field by field, including non-power-of-two sizes
// where the halving round count and interval splits are least forgiving.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "baselines/cht_crash.h"
#include "baselines/obg_byzantine.h"
#include "common/math.h"
#include "obs/budget.h"
#include "obs/journal.h"
#include "obs/telemetry.h"
#include "sim/adversary.h"

namespace renaming::baselines {
namespace {

SystemConfig make_cfg(NodeIndex n, std::uint64_t seed) {
  return SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, seed);
}

void expect_same_outcomes(const std::vector<NodeOutcome>& sim,
                          const std::vector<NodeOutcome>& cf) {
  ASSERT_EQ(sim.size(), cf.size());
  for (std::size_t v = 0; v < sim.size(); ++v) {
    EXPECT_EQ(sim[v].original_id, cf[v].original_id) << "node " << v;
    EXPECT_EQ(sim[v].new_id, cf[v].new_id) << "node " << v;
    EXPECT_EQ(sim[v].correct, cf[v].correct) << "node " << v;
  }
}

void expect_same_telemetry(const obs::Telemetry& sim, const obs::Telemetry& cf,
                           const std::vector<sim::MsgKind>& kinds) {
  for (sim::MsgKind k : kinds) {
    EXPECT_EQ(sim.kind_messages(k), cf.kind_messages(k)) << "kind " << +k;
    EXPECT_EQ(sim.kind_bits(k), cf.kind_bits(k)) << "kind " << +k;
  }
  const auto& sp = sim.phase(obs::PhaseId::kBaselineExchange);
  const auto& cp = cf.phase(obs::PhaseId::kBaselineExchange);
  EXPECT_EQ(sp.messages, cp.messages);
  EXPECT_EQ(sp.bits, cp.bits);
  EXPECT_EQ(sim.per_round_active_senders(), cf.per_round_active_senders());
  EXPECT_TRUE(cf.instants().empty());
  EXPECT_TRUE(cf.spans().empty());
  EXPECT_EQ(sim.algorithm(), cf.algorithm());
  EXPECT_EQ(sim.n(), cf.n());
  EXPECT_EQ(sim.f(), cf.f());
}

// The sizes deliberately include non-powers-of-two: ceil_log2 round counts
// and uneven bot/top interval splits are where a closed form would drift
// first if the halving analysis were sloppy.
constexpr NodeIndex kSizes[] = {2, 3, 5, 48, 96};

TEST(ClosedFormCht, ExactlyMatchesSimulation) {
  for (NodeIndex n : kSizes) {
    const auto cfg = make_cfg(n, 1000 + n);
    obs::Telemetry sim_tel;
    obs::Telemetry cf_tel;
    const auto sim = run_cht_renaming(cfg, nullptr, &sim_tel);
    const auto cf = run_cht_renaming(cfg, nullptr, &cf_tel, nullptr, {},
                                     /*closed_form_cutoff=*/1);
    EXPECT_FALSE(sim.closed_form) << "n=" << n;
    EXPECT_TRUE(cf.closed_form) << "n=" << n;
    EXPECT_EQ(sim.stats, cf.stats) << "n=" << n;
    expect_same_outcomes(sim.outcomes, cf.outcomes);
    EXPECT_TRUE(cf.report.ok()) << "n=" << n;
    expect_same_telemetry(sim_tel, cf_tel, {31});
  }
}

TEST(ClosedFormObg, ExactlyMatchesSimulation) {
  for (NodeIndex n : kSizes) {
    const auto cfg = make_cfg(n, 2000 + n);
    obs::Telemetry sim_tel;
    obs::Telemetry cf_tel;
    const auto sim = run_obg_renaming(cfg, {}, ObgByzBehaviour::kSplitAnnounce,
                                      &sim_tel);
    const auto cf = run_obg_renaming(cfg, {}, ObgByzBehaviour::kSplitAnnounce,
                                     &cf_tel, nullptr, {},
                                     /*closed_form_cutoff=*/1);
    EXPECT_FALSE(sim.closed_form) << "n=" << n;
    EXPECT_TRUE(cf.closed_form) << "n=" << n;
    EXPECT_EQ(sim.stats, cf.stats) << "n=" << n;
    expect_same_outcomes(sim.outcomes, cf.outcomes);
    EXPECT_TRUE(cf.report.ok()) << "n=" << n;
    expect_same_telemetry(sim_tel, cf_tel, {40, 41, 42});
  }
}

TEST(ClosedForm, BelowCutoffSimulates) {
  const auto cfg = make_cfg(48, 7);
  const auto cht = run_cht_renaming(cfg, nullptr, nullptr, nullptr, {},
                                    /*closed_form_cutoff=*/49);
  EXPECT_FALSE(cht.closed_form);
  const auto obg = run_obg_renaming(cfg, {}, ObgByzBehaviour::kSplitAnnounce,
                                    nullptr, nullptr, {},
                                    /*closed_form_cutoff=*/49);
  EXPECT_FALSE(obg.closed_form);
}

TEST(ClosedForm, FailuresForceSimulation) {
  // A non-zero crash budget (CHT) or any Byzantine node (OBG) makes the
  // execution adversary-dependent: the closed form must refuse.
  const auto cfg = make_cfg(48, 8);
  auto adversary = std::make_unique<sim::RandomCrashAdversary>(4, 0.5, 11);
  const auto cht = run_cht_renaming(cfg, std::move(adversary), nullptr,
                                    nullptr, {}, /*closed_form_cutoff=*/1);
  EXPECT_FALSE(cht.closed_form);
  EXPECT_TRUE(cht.report.ok());
  const auto obg = run_obg_renaming(cfg, {3, 17}, ObgByzBehaviour::kForgeIds,
                                    nullptr, nullptr, {},
                                    /*closed_form_cutoff=*/1);
  EXPECT_FALSE(obg.closed_form);
}

TEST(ClosedForm, JournalForcesSimulation) {
  // Journal fingerprints hash real per-delivery events; they cannot be
  // closed-formed, so an attached journal always simulates — and the bytes
  // must match a cutoff-free run exactly.
  const auto cfg = make_cfg(48, 9);
  obs::Journal plain;
  obs::Journal gated;
  const auto sim = run_cht_renaming(cfg, nullptr, nullptr, &plain);
  const auto cf = run_cht_renaming(cfg, nullptr, nullptr, &gated, {},
                                   /*closed_form_cutoff=*/1);
  EXPECT_FALSE(sim.closed_form);
  EXPECT_FALSE(cf.closed_form);
  EXPECT_EQ(sim.stats, cf.stats);
  std::ostringstream a;
  std::ostringstream b;
  obs::write_journal_binary(a, plain.data());
  obs::write_journal_binary(b, gated.data());
  EXPECT_EQ(a.str(), b.str());
}

TEST(ClosedForm, AuditGatesStillPass) {
  // The point of exact accounting: the Theorem 1.2/1.3-style budget
  // envelopes (obs/budget.h) audit closed-form runs just like simulated
  // ones, per-kind wire-schema cross-checks included.
  const auto cfg = make_cfg(96, 10);
  {
    obs::Telemetry tel;
    const auto r = run_cht_renaming(cfg, nullptr, &tel, nullptr, {},
                                    /*closed_form_cutoff=*/1);
    ASSERT_TRUE(r.closed_form);
    obs::BudgetParams p;
    p.algorithm = "cht";
    p.n = cfg.n;
    p.f = 0;
    p.namespace_size = cfg.namespace_size;
    const auto report = obs::audit_run(p, r.stats, &tel);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
  {
    obs::Telemetry tel;
    const auto r = run_obg_renaming(cfg, {}, ObgByzBehaviour::kSplitAnnounce,
                                    &tel, nullptr, {},
                                    /*closed_form_cutoff=*/1);
    ASSERT_TRUE(r.closed_form);
    obs::BudgetParams p;
    p.algorithm = "obg";
    p.n = cfg.n;
    p.f = 0;
    p.namespace_size = cfg.namespace_size;
    const auto report = obs::audit_run(p, r.stats, &tel);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

}  // namespace
}  // namespace renaming::baselines
