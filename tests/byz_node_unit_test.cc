// White-box unit tests for ByzNode stages: election + view construction
// (with authentication rejections), identity aggregation, the NEW-message
// decision threshold, and the kFullExchange ablation path — all driven
// with hand-crafted inboxes.
#include <gtest/gtest.h>

#include <algorithm>

#include "byzantine/byz_renaming.h"

namespace renaming::byzantine {
namespace {

SystemConfig fixed_config(NodeIndex n = 6) {
  SystemConfig cfg;
  cfg.n = n;
  cfg.namespace_size = 1000;
  for (NodeIndex v = 0; v < n; ++v) cfg.ids.push_back(50 * (v + 1));
  cfg.seed = 3;
  return cfg;
}

ByzParams everyone_in_pool() {
  ByzParams p;
  p.pool_constant = 1e9;  // p0 clamps to 1: every identity is a candidate
  p.shared_seed = 11;
  return p;
}

sim::Message tagged(Tag tag, NodeIndex sender, std::uint64_t w0) {
  auto m = sim::make_message(static_cast<sim::MsgKind>(tag), 32, w0);
  m.sender = sender;
  m.claimed_sender = sender;
  return m;
}

TEST(ByzNodeUnit, ElectionBroadcastsWhenInPool) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzNode node(0, cfg, dir, everyone_in_pool());
  sim::Outbox out(0, cfg.n);
  node.send(1, out);
  EXPECT_TRUE(node.elected());
  ASSERT_EQ(out.size(), cfg.n);
  for (const auto& [dest, msg] : out.entries()) {
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kElect));
    EXPECT_EQ(msg.w[0], 50u);
  }
}

TEST(ByzNodeUnit, NoElectionWhenPoolEmpty) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzParams params;
  params.pool_constant = 1e-12;  // p0 ~ 0
  params.shared_seed = 11;
  ByzNode node(0, cfg, dir, params);
  sim::Outbox out(0, cfg.n);
  node.send(1, out);
  EXPECT_FALSE(node.elected());
  EXPECT_EQ(out.size(), 0u);
}

TEST(ByzNodeUnit, ViewRejectsForgedIdentityClaims) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzNode node(0, cfg, dir, everyone_in_pool());
  sim::Outbox out(0, cfg.n);
  node.send(1, out);
  std::vector<sim::Message> inbox = {
      tagged(Tag::kElect, 0, 50),    // self, valid
      tagged(Tag::kElect, 1, 100),   // valid
      tagged(Tag::kElect, 2, 999),   // node 2 claims an id it does not own
      tagged(Tag::kElect, 3, 100),   // node 3 claims node 1's identity
  };
  node.receive(1, inbox);
  EXPECT_EQ(node.view().size(), 2u);
  EXPECT_TRUE(node.view().contains_link(0));
  EXPECT_TRUE(node.view().contains_link(1));
  EXPECT_FALSE(node.view().contains_link(2));
  EXPECT_FALSE(node.view().contains_link(3));
}

TEST(ByzNodeUnit, ViewIsOrderedByOriginalId) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzNode node(0, cfg, dir, everyone_in_pool());
  sim::Outbox out(0, cfg.n);
  node.send(1, out);
  std::vector<sim::Message> inbox = {
      tagged(Tag::kElect, 3, 200),
      tagged(Tag::kElect, 1, 100),
      tagged(Tag::kElect, 5, 300),
  };
  node.receive(1, inbox);
  ASSERT_EQ(node.view().size(), 3u);
  EXPECT_EQ(node.view().member(0).id, 100u);
  EXPECT_EQ(node.view().member(1).id, 200u);
  EXPECT_EQ(node.view().member(2).id, 300u);
}

TEST(ByzNodeUnit, IdReportGoesToWholeView) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzNode node(2, cfg, dir, everyone_in_pool());
  sim::Outbox skip(2, cfg.n);
  node.send(1, skip);
  node.receive(1, std::vector<sim::Message>{tagged(Tag::kElect, 0, 50),
                                            tagged(Tag::kElect, 4, 250)});
  sim::Outbox out(2, cfg.n);
  node.send(2, out);
  ASSERT_EQ(out.size(), 2u);
  out.expand();  // identical per-member reports coalesce into a kRepeat entry
  for (const auto& [dest, msg] : out.entries()) {
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kIdReport));
    EXPECT_EQ(msg.w[0], 150u);  // node 2's identity
    EXPECT_TRUE(dest == 0 || dest == 4);
  }
}

class ByzNodeDecisionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = fixed_config();
    dir_ = std::make_unique<Directory>(cfg_);
    node_ = std::make_unique<ByzNode>(0, cfg_, *dir_, everyone_in_pool());
    sim::Outbox out(0, cfg_.n);
    node_->send(1, out);
    // View: members at links 1..5 plus self => 6 members; majority = 4.
    std::vector<sim::Message> elects;
    for (NodeIndex v = 0; v < cfg_.n; ++v) {
      elects.push_back(tagged(Tag::kElect, v, cfg_.ids[v]));
    }
    node_->receive(1, elects);
    ASSERT_EQ(node_->view().size(), 6u);
  }

  SystemConfig cfg_;
  std::unique_ptr<Directory> dir_;
  std::unique_ptr<ByzNode> node_;
};

TEST_F(ByzNodeDecisionTest, MinorityNewMessagesDoNotDecide) {
  // 3 of 6 view members (not > half) push a fake name early.
  std::vector<sim::Message> fakes = {tagged(Tag::kNew, 1, 5),
                                     tagged(Tag::kNew, 2, 5),
                                     tagged(Tag::kNew, 3, 5)};
  node_->receive(2, fakes);
  EXPECT_FALSE(node_->new_id().has_value());
}

TEST_F(ByzNodeDecisionTest, MajorityNewMessagesDecideOnPlurality) {
  std::vector<sim::Message> votes = {
      tagged(Tag::kNew, 1, 4), tagged(Tag::kNew, 2, 4),
      tagged(Tag::kNew, 3, 4), tagged(Tag::kNew, 4, 9),
      tagged(Tag::kNew, 5, 0),  // null vote: counted for quorum, not value
  };
  node_->receive(2, votes);
  ASSERT_TRUE(node_->new_id().has_value());
  EXPECT_EQ(*node_->new_id(), 4u);
}

TEST_F(ByzNodeDecisionTest, NonViewSendersAreIgnored) {
  // Link 1..3 are in view, but a burst from one sender repeated and one
  // non-member must not inflate the quorum.
  std::vector<sim::Message> votes = {
      tagged(Tag::kNew, 1, 4), tagged(Tag::kNew, 1, 4),
      tagged(Tag::kNew, 1, 4), tagged(Tag::kNew, 2, 4),
  };
  node_->receive(2, votes);
  EXPECT_FALSE(node_->new_id().has_value());  // only 2 distinct members
}

TEST_F(ByzNodeDecisionTest, OutOfRangeValuesNeverWin) {
  std::vector<sim::Message> votes = {
      tagged(Tag::kNew, 1, 777), tagged(Tag::kNew, 2, 777),
      tagged(Tag::kNew, 3, 777), tagged(Tag::kNew, 4, 777),
      tagged(Tag::kNew, 5, 2),
  };
  node_->receive(2, votes);
  // 777 > n is malformed; the only admissible value is 2.
  ASSERT_TRUE(node_->new_id().has_value());
  EXPECT_EQ(*node_->new_id(), 2u);
}

TEST(ByzNodeUnit, FullExchangeAblationMergesByWitnessCount) {
  const auto cfg = fixed_config();
  const Directory dir(cfg);
  ByzParams params = everyone_in_pool();
  params.use_fingerprints = false;
  ByzNode node(0, cfg, dir, params);
  sim::Outbox out(0, cfg.n);
  node.send(1, out);
  std::vector<sim::Message> elects;
  for (NodeIndex v = 0; v < 4; ++v) {
    elects.push_back(tagged(Tag::kElect, v, cfg.ids[v]));
  }
  node.receive(1, elects);  // view of 4 members, t = 1
  // Round 2: id reports.
  std::vector<sim::Message> reports;
  for (NodeIndex v = 0; v < cfg.n; ++v) {
    reports.push_back(tagged(Tag::kIdReport, v, cfg.ids[v]));
  }
  node.receive(2, reports);
  // Round 3 send: must broadcast the identity vector blob to the view.
  sim::Outbox vec_out(0, cfg.n);
  node.send(3, vec_out);
  ASSERT_EQ(vec_out.size(), 4u);
  for (const auto& [dest, msg] : vec_out.entries()) {
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kVector));
    ASSERT_TRUE(msg.blob);
    EXPECT_EQ(msg.blob->size(), cfg.n);
  }
}

}  // namespace
}  // namespace renaming::byzantine
