// Mid-execution invariant checks for the paper's key lemmas. A pass-through
// "observer" adversary inspects the full system state every round (the
// full-information interface Eve already has) and records violations of:
//
//  * Lemma 2.3  — for every alive node v, the number of alive nodes whose
//                 interval is contained in I_v never exceeds |I_v|;
//  * Lemma 2.5  — at every phase end, max p - min p <= 1 over alive nodes;
//  * monotone d — depths never decrease;
//  * Lemma 3.8  — all correct committee members of the Byzantine algorithm
//                 hold identical pending/processed segment partitions
//                 (observed at quiescence via identical outcomes + counts).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "byzantine/byz_renaming.h"
#include "sim/engine.h"
#include "byzantine/strategies.h"
#include "crash/adversaries.h"
#include "crash/crash_renaming.h"

namespace renaming {
namespace {

/// Non-owning adapter: lets a test own an observer adversary on its stack
/// while the engine (which takes ownership of its adversary) borrows it.
class BorrowedAdversary final : public sim::CrashAdversary {
 public:
  explicit BorrowedAdversary(sim::CrashAdversary* inner) : inner_(inner) {}
  std::vector<sim::CrashOrder> decide(const sim::AdversaryView& view) override {
    return inner_->decide(view);
  }
  std::uint64_t budget() const override { return inner_->budget(); }

 private:
  sim::CrashAdversary* inner_;
};

/// Wraps an inner crash adversary; between decisions, audits Lemma 2.3 and
/// Lemma 2.5 over the live CrashNode states.
class CrashInvariantObserver final : public sim::CrashAdversary {
 public:
  explicit CrashInvariantObserver(std::unique_ptr<sim::CrashAdversary> inner)
      : inner_(std::move(inner)) {}

  std::vector<sim::CrashOrder> decide(const sim::AdversaryView& view) override {
    audit(view);
    return inner_ ? inner_->decide(view) : std::vector<sim::CrashOrder>{};
  }

  std::uint64_t budget() const override {
    return inner_ ? inner_->budget() : 0;
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void audit(const sim::AdversaryView& view) {
    std::vector<const crash::CrashNode*> alive;
    for (NodeIndex v = 0; v < view.n; ++v) {
      if (!view.is_alive(v)) continue;
      alive.push_back(dynamic_cast<const crash::CrashNode*>(&view.node(v)));
    }
    // Lemma 2.3: |V(I_v)| <= |I_v|.
    for (const auto* v : alive) {
      std::uint64_t packed = 0;
      for (const auto* u : alive) {
        packed += u->interval().subset_of(v->interval());
      }
      if (packed > v->interval().size()) {
        violations_.push_back("Lemma 2.3: interval " +
                              v->interval().to_string() + " holds " +
                              std::to_string(packed) + " nodes at round " +
                              std::to_string(view.round));
      }
    }
    // Lemma 2.5 (checked at phase boundaries: before round 1 of the next
    // phase, i.e. when view.round % 3 == 1 and round > 1).
    if (view.round % 3 == 1 && view.round > 1 && !alive.empty()) {
      std::uint32_t pmin = alive[0]->p(), pmax = alive[0]->p();
      for (const auto* u : alive) {
        pmin = std::min(pmin, u->p());
        pmax = std::max(pmax, u->p());
      }
      if (pmax > pmin + 1) {
        violations_.push_back("Lemma 2.5: p spread " + std::to_string(pmin) +
                              ".." + std::to_string(pmax) + " at round " +
                              std::to_string(view.round));
      }
    }
    // Depth monotonicity per node.
    if (depths_.empty()) depths_.resize(view.n, 0);
    for (NodeIndex v = 0; v < view.n; ++v) {
      if (!view.is_alive(v)) continue;
      const auto* node = dynamic_cast<const crash::CrashNode*>(&view.node(v));
      if (node->depth() < depths_[v]) {
        violations_.push_back("depth decreased at node " + std::to_string(v));
      }
      depths_[v] = node->depth();
    }
  }

  std::unique_ptr<sim::CrashAdversary> inner_;
  std::vector<std::string> violations_;
  std::vector<std::uint32_t> depths_;
};

crash::CrashParams small_committee() {
  crash::CrashParams p;
  p.election_constant = 3.0;
  return p;
}

TEST(CrashInvariants, HoldEveryRoundFailureFree) {
  const auto cfg = SystemConfig::random(128, 128u * 128u * 5u, 1);
  CrashInvariantObserver observer(nullptr);
  const auto result = crash::run_crash_renaming(
      cfg, small_committee(), std::make_unique<BorrowedAdversary>(&observer));
  ASSERT_TRUE(result.report.ok());
  EXPECT_TRUE(observer.violations().empty())
      << observer.violations().size() << " violations, first: "
      << observer.violations()[0];
}

TEST(CrashInvariants, HoldUnderCommitteeHunter) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto cfg = SystemConfig::random(96, 96u * 96u * 5u, seed);
    CrashInvariantObserver observer(std::make_unique<crash::CommitteeHunter>(
        48, crash::CommitteeHunter::Mode::kAtAnnounce, seed * 11));
    const auto result = crash::run_crash_renaming(
        cfg, small_committee(),
        std::make_unique<BorrowedAdversary>(&observer));
    ASSERT_TRUE(result.report.ok()) << "seed=" << seed;
    EXPECT_TRUE(observer.violations().empty())
        << "seed=" << seed << " first: " << observer.violations()[0];
  }
}

TEST(CrashInvariants, HoldUnderMidResponseChaos) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto cfg = SystemConfig::random(96, 96u * 96u * 5u, seed + 50);
    CrashInvariantObserver observer(std::make_unique<crash::CommitteeHunter>(
        48, crash::CommitteeHunter::Mode::kMidResponse, seed * 13, 0.5));
    const auto result = crash::run_crash_renaming(
        cfg, small_committee(),
        std::make_unique<BorrowedAdversary>(&observer));
    ASSERT_TRUE(result.report.ok()) << "seed=" << seed;
    EXPECT_TRUE(observer.violations().empty())
        << "seed=" << seed << " first: " << observer.violations()[0];
  }
}

TEST(CrashInvariants, HoldUnderCombinedRandomCrashes) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto cfg = SystemConfig::random(80, 80u * 80u * 5u, seed + 100);
    CrashInvariantObserver observer(
        std::make_unique<sim::RandomCrashAdversary>(79, 0.12, seed * 17));
    const auto result = crash::run_crash_renaming(
        cfg, small_committee(),
        std::make_unique<BorrowedAdversary>(&observer));
    ASSERT_TRUE(result.report.ok()) << "seed=" << seed;
    EXPECT_TRUE(observer.violations().empty())
        << "seed=" << seed << " first: " << observer.violations()[0];
  }
}


/// Executable counterparts of Lemma 2.2 and Lemma 2.4: phase-grained
/// progress. At each phase boundary, if some committee member survived
/// the whole previous phase, the minimum undecided depth must have grown
/// (L2.2); if no member existed at the phase end, the minimum p must grow
/// by the end of the next phase (L2.4).
class ProgressObserver final : public sim::CrashAdversary {
 public:
  explicit ProgressObserver(std::unique_ptr<sim::CrashAdversary> inner)
      : inner_(std::move(inner)) {}

  std::vector<sim::CrashOrder> decide(const sim::AdversaryView& view) override {
    // Observe at the start of round 1 of each phase (i.e. the state at the
    // end of the previous phase). Lemma 2.2 quantifies over nodes that
    // were members at the *start* of the phase and survived it whole, so
    // the elected set is snapshotted at every boundary and compared one
    // phase later against aliveness.
    if (view.round % 3 == 1) {
      if (view.round > 1) audit_phase_boundary(view);
      elected_at_phase_start_.assign(view.n, false);
      for (NodeIndex v = 0; v < view.n; ++v) {
        if (!view.is_alive(v)) continue;
        const auto* node =
            dynamic_cast<const crash::CrashNode*>(&view.node(v));
        elected_at_phase_start_[v] = node->elected();
      }
    }
    return inner_ ? inner_->decide(view) : std::vector<sim::CrashOrder>{};
  }

  std::uint64_t budget() const override { return inner_ ? inner_->budget() : 0; }
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  struct PhaseState {
    std::uint32_t min_undecided_depth = 0;
    bool any_undecided = false;
    std::uint32_t min_p = 0;
    bool member_survived_phase = false;
    bool any_member_at_end = false;
  };

  static PhaseState snapshot(const sim::AdversaryView& view,
                             const std::vector<bool>& elected_at_start) {
    PhaseState st;
    std::uint32_t min_d = ~0u, min_p = ~0u;
    for (NodeIndex v = 0; v < view.n; ++v) {
      if (!view.is_alive(v)) continue;  // crashed mid-phase: not a survivor
      const auto* node = dynamic_cast<const crash::CrashNode*>(&view.node(v));
      min_p = std::min(min_p, node->p());
      if (!node->interval().singleton()) {
        st.any_undecided = true;
        min_d = std::min(min_d, node->depth());
      }
      st.any_member_at_end |= node->elected();
      st.member_survived_phase |=
          v < elected_at_start.size() && elected_at_start[v];
    }
    st.min_undecided_depth = st.any_undecided ? min_d : ~0u;
    st.min_p = min_p == ~0u ? 0 : min_p;
    return st;
  }

  void audit_phase_boundary(const sim::AdversaryView& view) {
    const PhaseState now = snapshot(view, elected_at_phase_start_);
    if (have_prev_) {
      // Lemma 2.2: surviving member across the phase => depth progress
      // (unless everyone decided, in which case progress is complete).
      if (prev_.any_undecided && now.any_undecided &&
          now.member_survived_phase &&
          now.min_undecided_depth <= prev_.min_undecided_depth &&
          prev_.min_undecided_depth != ~0u) {
        violations_.push_back("Lemma 2.2: member survived phase ending at round " +
                              std::to_string(view.round - 1) +
                              " but min depth did not increase");
      }
      // Lemma 2.4: no member at previous phase end => min p grew.
      if (!prev_.any_member_at_end && now.min_p <= prev_.min_p) {
        violations_.push_back("Lemma 2.4: committee extinct at round " +
                              std::to_string(view.round - 4) +
                              " but min p did not increase");
      }
    }
    prev_ = now;
    have_prev_ = true;
  }

  std::unique_ptr<sim::CrashAdversary> inner_;
  std::vector<std::string> violations_;
  std::vector<bool> elected_at_phase_start_;
  PhaseState prev_;
  bool have_prev_ = false;
};

TEST(CrashProgress, Lemma22And24HoldUnderCommitteeHunters) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const NodeIndex n = 96;
    const auto cfg = SystemConfig::random(n, 96u * 96u * 5u, seed + 700);
    ProgressObserver observer(std::make_unique<crash::CommitteeHunter>(
        64, crash::CommitteeHunter::Mode::kAtAnnounce, seed * 29));
    const auto result = crash::run_crash_renaming(
        cfg, small_committee(),
        std::make_unique<BorrowedAdversary>(&observer));
    ASSERT_TRUE(result.report.ok()) << "seed=" << seed;
    EXPECT_TRUE(observer.violations().empty())
        << "seed=" << seed << " first: " << observer.violations()[0];
  }
}

TEST(CrashProgress, Lemma22And24HoldFailureFree) {
  const auto cfg = SystemConfig::random(128, 128u * 128u * 5u, 900);
  ProgressObserver observer(nullptr);
  const auto result = crash::run_crash_renaming(
      cfg, small_committee(), std::make_unique<BorrowedAdversary>(&observer));
  ASSERT_TRUE(result.report.ok());
  EXPECT_TRUE(observer.violations().empty())
      << "first: " << observer.violations()[0];
}

// Lemma 3.8-flavoured check for the Byzantine algorithm: all correct
// committee members finish with the same number of loop iterations and
// splits (their J/J-hat evolve in lockstep), and every correct member's
// dirty-segment count stays below the correct-quorum bound.
TEST(ByzInvariants, CommitteeLockstepUnderSplitReporters) {
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 9);
  byzantine::ByzParams params;
  params.pool_constant = 4.0;
  params.shared_seed = 77;
  std::vector<NodeIndex> byz = {2, 13, 29, 47};

  const Directory directory(cfg);
  std::vector<std::unique_ptr<sim::Node>> nodes;
  std::vector<bool> is_byz(n, false);
  for (NodeIndex b : byz) is_byz[b] = true;
  for (NodeIndex v = 0; v < n; ++v) {
    if (is_byz[v]) {
      nodes.push_back(byzantine::SplitReporter::make(v, cfg, directory,
                                                     params));
    } else {
      nodes.push_back(
          std::make_unique<byzantine::ByzNode>(v, cfg, directory, params));
    }
  }
  sim::Engine engine(std::move(nodes));
  for (NodeIndex b : byz) engine.mark_byzantine(b);
  engine.run(100000);

  std::uint32_t iters = 0, splits = 0;
  bool first = true;
  std::size_t members = 0;
  for (NodeIndex v = 0; v < n; ++v) {
    if (is_byz[v]) continue;
    const auto& node = dynamic_cast<const byzantine::ByzNode&>(engine.node(v));
    ASSERT_TRUE(node.done()) << "node " << v << " undecided";
    if (!node.elected()) continue;
    ++members;
    if (first) {
      iters = node.loop_iterations();
      splits = node.segments_split();
      first = false;
    } else {
      EXPECT_EQ(node.loop_iterations(), iters) << "member " << v;
      EXPECT_EQ(node.segments_split(), splits) << "member " << v;
    }
    // A correct member can be "dirty" only where Byzantine reports split
    // the committee; with f split-reporters there are at most f dirty
    // leaf positions, each contributing <= 1 dirty segment to a member.
    EXPECT_LE(node.segments_dirty(), byz.size()) << "member " << v;
  }
  EXPECT_GE(members, 2u);
  EXPECT_GT(iters, 1u);  // split reporters force real recursion
}

}  // namespace
}  // namespace renaming
