// Tests for the consensus substrate: CommitteeView, PhaseKing (Lemma 3.4
// interface) and Validator (Lemma 3.3 interface), driven through the real
// engine with honest and equivocating members.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/prng.h"
#include "consensus/committee.h"
#include "consensus/phase_king.h"
#include "consensus/validator.h"
#include "sim/engine.h"

namespace renaming::consensus {
namespace {

constexpr sim::MsgKind kKind = 99;
constexpr std::uint32_t kBits = 80;

CommitteeView make_view(NodeIndex m) {
  std::vector<Member> members;
  for (NodeIndex i = 0; i < m; ++i) {
    members.push_back({static_cast<OriginalId>(100 + 7 * i), i});
  }
  return CommitteeView(std::move(members));
}

TEST(CommitteeView, SortedDedupedAndTolerance) {
  CommitteeView v({{30, 2}, {10, 0}, {20, 1}, {10, 0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.member(0).id, 10u);
  EXPECT_EQ(v.member(2).id, 30u);
  EXPECT_EQ(v.max_tolerated(), 0u);
  EXPECT_EQ(make_view(4).max_tolerated(), 1u);
  EXPECT_EQ(make_view(7).max_tolerated(), 2u);
  EXPECT_EQ(make_view(10).max_tolerated(), 3u);
  EXPECT_EQ(v.index_of_link(1), 1u);
  EXPECT_EQ(v.index_of_link(9), CommitteeView::npos);
}

/// Drives one SubProtocol instance per node over the engine.
class HarnessNode : public sim::Node {
 public:
  HarnessNode(std::unique_ptr<SubProtocol> protocol)
      : protocol_(std::move(protocol)) {}

  void send(Round round, sim::Outbox& out) override {
    if (!finished_) protocol_->send(round - 1, out);
  }
  void receive(Round round, sim::InboxView inbox) override {
    if (!finished_) finished_ = protocol_->receive(round - 1, inbox);
  }
  bool done() const override { return finished_; }

  SubProtocol& protocol() { return *protocol_; }

 private:
  std::unique_ptr<SubProtocol> protocol_;
  bool finished_ = false;
};

/// Byzantine member that equivocates: flips payload words per recipient.
class EquivocatorNode : public sim::Node {
 public:
  EquivocatorNode(const CommitteeView& view, NodeIndex self,
                  std::uint64_t seed)
      : view_(view), self_(self), rng_(seed + self) {}

  void send(Round, sim::Outbox& out) override {
    // Send random protocol-shaped garbage to every member, twice (the
    // dedup logic must keep only the first).
    for (int volley = 0; volley < 2; ++volley) {
      for (const Member& m : view_.members()) {
        out.send(m.link,
                 sim::make_message(kKind, kBits, std::uint64_t{0},
                                   rng_.below(3), rng_(), rng_(), rng_()));
      }
    }
  }
  void receive(Round, sim::InboxView) override {}
  bool done() const override { return true; }

 private:
  const CommitteeView& view_;
  NodeIndex self_;
  Xoshiro256 rng_;
};

struct ConsensusSetup {
  CommitteeView view;
  std::vector<bool> byz;
};

/// Runs PhaseKing over m members with given inputs; byz members equivocate.
std::vector<bool> run_phase_king(const CommitteeView& view,
                                 const std::vector<int>& inputs,
                                 const std::vector<bool>& byz,
                                 std::uint64_t seed,
                                 std::vector<bool>* correct_mask = nullptr) {
  const NodeIndex m = static_cast<NodeIndex>(view.size());
  std::vector<std::unique_ptr<sim::Node>> nodes;
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) {
      nodes.push_back(std::make_unique<EquivocatorNode>(view, i, seed));
    } else {
      nodes.push_back(std::make_unique<HarnessNode>(
          std::make_unique<PhaseKing>(view, i, /*session=*/0, kKind, kBits,
                                      inputs[i] != 0)));
    }
  }
  sim::Engine engine(std::move(nodes));
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) engine.mark_byzantine(i);
  }
  engine.run(1000);
  std::vector<bool> outputs(m, false);
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) continue;
    auto& h = dynamic_cast<HarnessNode&>(engine.node(i));
    EXPECT_TRUE(h.done()) << "phase king did not terminate";
    outputs[i] = dynamic_cast<PhaseKing&>(h.protocol()).output();
  }
  if (correct_mask != nullptr) {
    correct_mask->assign(byz.begin(), byz.end());
    correct_mask->flip();
  }
  return outputs;
}

TEST(PhaseKing, ValidityAllSameInput) {
  for (bool b : {false, true}) {
    const auto view = make_view(7);
    std::vector<int> inputs(7, b ? 1 : 0);
    std::vector<bool> byz(7, false);
    const auto out = run_phase_king(view, inputs, byz, 1);
    for (NodeIndex i = 0; i < 7; ++i) EXPECT_EQ(out[i], b);
  }
}

TEST(PhaseKing, AgreementMixedInputsNoByzantine) {
  const auto view = make_view(6);
  std::vector<int> inputs = {0, 1, 0, 1, 1, 0};
  std::vector<bool> byz(6, false);
  const auto out = run_phase_king(view, inputs, byz, 2);
  for (NodeIndex i = 1; i < 6; ++i) EXPECT_EQ(out[i], out[0]);
}

TEST(PhaseKing, AgreementUnderMaxEquivocators) {
  // m = 10, t = 3: place 3 equivocators (including the first kings, the
  // worst positions) and sweep mixed inputs and seeds.
  const auto view = make_view(10);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> inputs(10);
    Xoshiro256 rng(seed);
    for (auto& x : inputs) x = static_cast<int>(rng.below(2));
    std::vector<bool> byz(10, false);
    byz[0] = byz[1] = byz[2] = true;  // first three kings are Byzantine
    const auto out = run_phase_king(view, inputs, byz, seed);
    int reference = -1;
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) continue;
      if (reference < 0) reference = out[i];
      EXPECT_EQ(static_cast<int>(out[i]), reference) << "seed=" << seed;
    }
  }
}

TEST(PhaseKing, ValidityUnderEquivocatorsWhenCorrectAgree) {
  const auto view = make_view(10);
  for (bool b : {false, true}) {
    std::vector<int> inputs(10, b ? 1 : 0);
    std::vector<bool> byz(10, false);
    byz[3] = byz[7] = byz[9] = true;
    const auto out = run_phase_king(view, inputs, byz, 5);
    for (NodeIndex i = 0; i < 10; ++i) {
      if (!byz[i]) {
        EXPECT_EQ(out[i], b);
      }
    }
  }
}

TEST(PhaseKing, SingleMemberTrivial) {
  const auto view = make_view(1);
  const auto out = run_phase_king(view, {1}, {false}, 3);
  EXPECT_TRUE(out[0]);
}

/// Runs Validator over m members; returns (same, out) per correct member.
struct ValidatorOutcome {
  bool same;
  ValidatorValue out;
};

std::vector<ValidatorOutcome> run_validator(
    const CommitteeView& view, const std::vector<ValidatorValue>& inputs,
    const std::vector<bool>& byz, std::uint64_t seed) {
  const NodeIndex m = static_cast<NodeIndex>(view.size());
  std::vector<std::unique_ptr<sim::Node>> nodes;
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) {
      nodes.push_back(std::make_unique<EquivocatorNode>(view, i, seed));
    } else {
      nodes.push_back(std::make_unique<HarnessNode>(std::make_unique<Validator>(
          view, i, /*session=*/0, kKind, kBits, inputs[i])));
    }
  }
  sim::Engine engine(std::move(nodes));
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) engine.mark_byzantine(i);
  }
  engine.run(10);
  std::vector<ValidatorOutcome> outcomes(m);
  for (NodeIndex i = 0; i < m; ++i) {
    if (byz[i]) continue;
    auto& h = dynamic_cast<HarnessNode&>(engine.node(i));
    EXPECT_TRUE(h.done());
    auto& v = dynamic_cast<Validator&>(h.protocol());
    outcomes[i] = {v.same(), v.output()};
  }
  return outcomes;
}

TEST(Validator, StrongValidityAllSame) {
  const auto view = make_view(7);
  const ValidatorValue in{0xABCD, 42};
  std::vector<ValidatorValue> inputs(7, in);
  std::vector<bool> byz(7, false);
  byz[2] = byz[5] = true;  // t = 2 equivocators
  const auto out = run_validator(view, inputs, byz, 7);
  for (NodeIndex i = 0; i < 7; ++i) {
    if (byz[i]) continue;
    EXPECT_TRUE(out[i].same);
    EXPECT_EQ(out[i].out, in);
  }
}

TEST(Validator, WeakAgreementAndValidityUnderSplit) {
  // Correct members hold two different values; whatever happens, outputs
  // must be some correct member's input, and if anyone reports same=1 all
  // correct outputs must coincide.
  const auto view = make_view(9);
  const ValidatorValue a{1, 10}, b{2, 20};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<ValidatorValue> inputs(9, a);
    for (NodeIndex i = 4; i < 9; ++i) inputs[i] = b;
    std::vector<bool> byz(9, false);
    byz[0] = byz[8] = true;
    const auto out = run_validator(view, inputs, byz, seed);
    bool any_same = false;
    for (NodeIndex i = 0; i < 9; ++i) {
      if (byz[i]) continue;
      any_same |= out[i].same;
      EXPECT_TRUE(out[i].out == a || out[i].out == b)
          << "output fabricated, seed=" << seed;
    }
    if (any_same) {
      const ValidatorValue ref = [&] {
        for (NodeIndex i = 0; i < 9; ++i) {
          if (!byz[i]) return out[i].out;
        }
        return ValidatorValue{};
      }();
      for (NodeIndex i = 0; i < 9; ++i) {
        if (!byz[i]) {
          EXPECT_EQ(out[i].out, ref) << "seed=" << seed;
        }
      }
    }
  }
}

TEST(Validator, NoQuorumKeepsOwnInputFamily) {
  // Three-way split among correct members, no Byzantine: nobody can vote,
  // so every member keeps a correct value (its own).
  const auto view = make_view(6);
  std::vector<ValidatorValue> inputs = {{1, 1}, {1, 1}, {2, 2},
                                        {2, 2}, {3, 3}, {3, 3}};
  std::vector<bool> byz(6, false);
  const auto out = run_validator(view, inputs, byz, 3);
  for (NodeIndex i = 0; i < 6; ++i) {
    EXPECT_FALSE(out[i].same);
    EXPECT_EQ(out[i].out, inputs[i]);
  }
}


/// Worst-case coordinated attacker: votes 0 to the first half of the view
/// and 1 to the second half every vote round, and equivocates as king.
class SplitVoteNode : public sim::Node {
 public:
  SplitVoteNode(const CommitteeView& view, std::uint64_t session)
      : view_(view), session_(session) {}

  void send(Round round, sim::Outbox& out) override {
    const std::uint32_t step = round - 1;
    const std::uint64_t subkind = step % 2;  // alternate vote/king shapes
    for (std::size_t i = 0; i < view_.size(); ++i) {
      const std::uint64_t value = i < view_.size() / 2 ? 0 : 1;
      out.send(view_.member(i).link,
               sim::make_message(kKind, kBits, session_, subkind, value));
    }
  }
  void receive(Round, sim::InboxView) override {}
  bool done() const override { return true; }

 private:
  const CommitteeView& view_;
  std::uint64_t session_;
};

TEST(PhaseKing, AgreementUnderSplitVoteAttack) {
  const auto view = make_view(10);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<int> inputs(10);
    Xoshiro256 rng(seed * 3);
    for (auto& x : inputs) x = static_cast<int>(rng.below(2));
    std::vector<bool> byz(10, false);
    byz[0] = byz[4] = byz[9] = true;
    std::vector<std::unique_ptr<sim::Node>> nodes;
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) {
        nodes.push_back(std::make_unique<SplitVoteNode>(view, 0));
      } else {
        nodes.push_back(std::make_unique<HarnessNode>(
            std::make_unique<PhaseKing>(view, i, 0, kKind, kBits,
                                        inputs[i] != 0)));
      }
    }
    sim::Engine engine(std::move(nodes));
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) engine.mark_byzantine(i);
    }
    engine.run(100);
    int reference = -1;
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) continue;
      auto& h = dynamic_cast<HarnessNode&>(engine.node(i));
      ASSERT_TRUE(h.done());
      const int out = dynamic_cast<PhaseKing&>(h.protocol()).output();
      if (reference < 0) reference = out;
      EXPECT_EQ(out, reference) << "seed=" << seed;
    }
  }
}

TEST(Validator, SplitVoteAttackCannotFabricateOutput) {
  const auto view = make_view(10);
  const ValidatorValue a{11, 1}, b{22, 2};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::vector<std::unique_ptr<sim::Node>> nodes;
    std::vector<bool> byz(10, false);
    byz[2] = byz[5] = byz[8] = true;
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) {
        nodes.push_back(std::make_unique<SplitVoteNode>(view, 0));
      } else {
        nodes.push_back(std::make_unique<HarnessNode>(
            std::make_unique<Validator>(view, i, 0, kKind, kBits,
                                        i < 5 ? a : b)));
      }
    }
    sim::Engine engine(std::move(nodes));
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) engine.mark_byzantine(i);
    }
    engine.run(10);
    for (NodeIndex i = 0; i < 10; ++i) {
      if (byz[i]) continue;
      auto& h = dynamic_cast<HarnessNode&>(engine.node(i));
      ASSERT_TRUE(h.done());
      const auto& v = dynamic_cast<Validator&>(h.protocol());
      EXPECT_TRUE(v.output() == a || v.output() == b)
          << "fabricated output, seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace renaming::consensus
