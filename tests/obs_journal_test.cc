// Flight-recorder journal tests (obs/journal.h, obs/doctor.h).
//
// The journal's contract is stricter than telemetry's: its bytes must be
// identical whatever other observers are attached (telemetry, traces) and
// whatever the build config (RENAMING_NO_TELEMETRY) — this file runs
// unchanged in both CI configs and pins one golden journal digest so the
// two configs cross-check each other. On top sit the doctor tests: a
// seeded single-bit perturbation must be localized to its exact round, and
// a forced budget failure must be explained with the guilty phase and its
// round window.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "byzantine/byz_renaming.h"
#include "byzantine/strategies.h"
#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/doctor.h"
#include "obs/journal.h"
#include "obs/kind_registry.h"
#include "obs/telemetry.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace renaming {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string to_bytes(const obs::JournalData& data) {
  std::ostringstream out;
  obs::write_journal_binary(out, data);
  return out.str();
}

/// One seeded crash run with a journal attached; telemetry and trace are
/// optional so tests can vary the *other* observers.
obs::JournalData crash_journal(std::uint64_t seed, bool with_telemetry,
                               bool with_trace, std::size_t capacity = 0,
                               sim::RunStats* stats_out = nullptr) {
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, seed);
  crash::CrashParams params;
  params.election_constant = 3.0;
  auto adversary = std::make_unique<crash::CommitteeHunter>(
      12, crash::CommitteeHunter::Mode::kMidResponse, seed, 0.5);
  obs::Telemetry telemetry;
  std::ostringstream trace_out;
  sim::JsonlTrace trace(trace_out);
  obs::Journal journal(capacity);
  const auto result = crash::run_crash_renaming(
      cfg, params, std::move(adversary), with_trace ? &trace : nullptr,
      with_telemetry ? &telemetry : nullptr, &journal);
  if (stats_out != nullptr) *stats_out = result.stats;
  return journal.data();
}

obs::JournalData byz_journal(std::uint64_t seed, bool with_telemetry,
                             bool with_trace) {
  const NodeIndex n = 40;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, seed);
  byzantine::ByzParams params;
  params.pool_constant = 4.0;
  params.shared_seed = seed;
  obs::Telemetry telemetry;
  std::ostringstream trace_out;
  sim::JsonlTrace trace(trace_out);
  obs::Journal journal;
  byzantine::run_byz_renaming(cfg, params, {1, 7, 23},
                              &byzantine::Spoofer::make, 0,
                              with_trace ? &trace : nullptr,
                              with_telemetry ? &telemetry : nullptr, &journal);
  return journal.data();
}

// --- determinism / observability contract ----------------------------------

TEST(Journal, BytesIdenticalWhateverOtherObserversAttach) {
  // Telemetry + trace on one side, bare engine on the other: the trace
  // sink switches the engine between the shared-inbox fast path and the
  // per-copy slow path, so this also pins that the fingerprint is
  // delivery-path-independent.
  const auto instrumented = crash_journal(41, true, true);
  const auto bare = crash_journal(41, false, false);
  EXPECT_EQ(instrumented, bare);
  EXPECT_EQ(to_bytes(instrumented), to_bytes(bare));
}

TEST(Journal, ByzantineBytesIdenticalWhateverOtherObserversAttach) {
  // The Byzantine run exercises the multicast and spoof-rejection hooks.
  const auto instrumented = byz_journal(17, true, true);
  const auto bare = byz_journal(17, false, false);
  EXPECT_EQ(instrumented, bare);
  EXPECT_EQ(to_bytes(instrumented), to_bytes(bare));
  EXPECT_GT(instrumented.spoofs_rejected, 0u);
}

TEST(Journal, GoldenJournalIsPinnedAcrossBuildConfigs) {
  // This constant must hold in BOTH CI configs (default and
  // RENAMING_NO_TELEMETRY): the journal is deliberately not compiled out,
  // and its bytes may not depend on the telemetry build flag. If a change
  // to the journal format or the protocol moves it intentionally, update
  // the pin in the same commit.
  const auto data = crash_journal(48, false, false);
  EXPECT_EQ(fnv1a(to_bytes(data)), 3075384459333091917ull);
}

TEST(Journal, DifferentSeedsProduceDifferentFingerprints) {
  const auto a = crash_journal(41, false, false);
  const auto b = crash_journal(42, false, false);
  EXPECT_NE(to_bytes(a), to_bytes(b));
}

TEST(Journal, RingKeepsLastRecordsButFullTotals) {
  sim::RunStats stats;
  const auto full = crash_journal(41, false, false, 0, &stats);
  const auto ring = crash_journal(41, false, false, 5);
  ASSERT_GT(full.records.size(), 5u);
  EXPECT_EQ(ring.records.size(), 5u);
  EXPECT_EQ(ring.dropped_rounds, full.records.size() - 5);
  EXPECT_FALSE(ring.complete());
  // The ring holds exactly the last five records of the full journal...
  const std::vector<obs::JournalRound> tail(full.records.end() - 5,
                                            full.records.end());
  EXPECT_EQ(ring.records, tail);
  // ...while the run totals still cover the whole execution.
  EXPECT_EQ(ring.total_messages, stats.total_messages);
  EXPECT_EQ(ring.total_bits, stats.total_bits);
  EXPECT_EQ(ring.crashes, stats.crashes);
}

TEST(Journal, TotalsMatchEngineStats) {
  sim::RunStats stats;
  const auto data = crash_journal(41, false, false, 0, &stats);
  EXPECT_EQ(data.total_messages, stats.total_messages);
  EXPECT_EQ(data.total_bits, stats.total_bits);
  EXPECT_EQ(data.rounds, stats.rounds);
  EXPECT_EQ(data.crashes, stats.crashes);
  EXPECT_EQ(data.max_message_bits, stats.max_message_bits);
  ASSERT_EQ(data.records.size(), stats.per_round.size());
  for (std::size_t r = 0; r < data.records.size(); ++r) {
    EXPECT_EQ(data.records[r].messages, stats.per_round[r].messages);
    EXPECT_EQ(data.records[r].bits, stats.per_round[r].bits);
  }
}

// --- serialization ----------------------------------------------------------

TEST(Journal, BinaryRoundTripIsLossless) {
  const auto data = crash_journal(41, false, false);
  std::istringstream in(to_bytes(data));
  obs::JournalData back;
  std::string error;
  ASSERT_TRUE(obs::read_journal_binary(in, &back, &error)) << error;
  EXPECT_EQ(back, data);
}

TEST(Journal, TruncatedAndCorruptInputsFailCleanly) {
  const std::string bytes = to_bytes(crash_journal(41, false, false));
  obs::JournalData out;
  std::string error;
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(obs::read_journal_binary(in, &out, &error)) << cut;
    EXPECT_FALSE(error.empty());
  }
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  std::istringstream in(wrong_magic);
  EXPECT_FALSE(obs::read_journal_binary(in, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(Journal, JsonlCarriesHeaderKindNamesAndEvents) {
  const auto data = crash_journal(41, false, false);
  std::ostringstream out;
  obs::write_journal_jsonl(out, data);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"renaming-journal-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"algorithm\":\"crash\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"COMMITTEE\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"crash\""), std::string::npos);
}

// --- kind registry agreement (satellite of the exhaustiveness guard) --------

TEST(Journal, CanonicalRegistryMatchesLiveTelemetryLedgers) {
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 41);
  crash::CrashParams params;
  params.election_constant = 3.0;
  obs::Telemetry telemetry;
  obs::Journal journal;
  const auto result = crash::run_crash_renaming(cfg, params, nullptr, nullptr,
                                                &telemetry, &journal);
  // The telemetry cross-check needs live ledgers; under
  // -DRENAMING_NO_TELEMETRY they are dead-stripped, but the journal-vs-
  // RunStats reconciliation below must hold in both configs.
  if constexpr (obs::kTelemetryEnabled) {
    const auto phases = obs::phases_from_journal(journal.data());
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      const auto id = static_cast<obs::PhaseId>(i);
      EXPECT_EQ(phases[i].messages, telemetry.phase(id).messages)
          << obs::phase_name(id);
      EXPECT_EQ(phases[i].bits, telemetry.phase(id).bits)
          << obs::phase_name(id);
    }
  }
  const auto stats = obs::stats_from_journal(journal.data());
  EXPECT_EQ(stats.total_messages, result.stats.total_messages);
  EXPECT_EQ(stats.total_bits, result.stats.total_bits);
  EXPECT_EQ(stats.rounds, result.stats.rounds);
  EXPECT_EQ(stats.per_round, result.stats.per_round);
}

// --- the doctor -------------------------------------------------------------

constexpr sim::MsgKind kProbe = 41;

/// Broadcasts one deterministic word per round; one instance can be told
/// to flip a single payload bit in a single round (the planted fault).
class ProbeNode final : public sim::Node {
 public:
  ProbeNode(NodeIndex self, Round rounds, Round flip_round = 0)
      : self_(self), rounds_(rounds), flip_round_(flip_round) {}

  void send(Round round, sim::Outbox& out) override {
    std::uint64_t word = (static_cast<std::uint64_t>(self_) << 20) | round;
    if (round == flip_round_) word ^= 1ull << 17;
    out.broadcast(sim::make_message(kProbe, 32, word));
  }

  void receive(Round round, sim::InboxView) override { executed_ = round; }
  bool done() const override { return executed_ >= rounds_; }

 private:
  NodeIndex self_;
  Round rounds_;
  Round flip_round_;
  Round executed_ = 0;
};

obs::JournalData probe_run(NodeIndex n, Round rounds, Round flip_round) {
  std::vector<std::unique_ptr<sim::Node>> nodes;
  for (NodeIndex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<ProbeNode>(
        v, rounds, v == 3 ? flip_round : Round{0}));
  }
  sim::Engine engine(std::move(nodes));
  obs::Journal journal;
  journal.set_run_info("probe", n, 0);
  engine.set_journal(&journal);
  engine.run(rounds);
  return journal.data();
}

TEST(Doctor, BisectsASingleFlippedPayloadBitToItsRound) {
  const auto clean = probe_run(16, 12, 0);
  const auto faulty = probe_run(16, 12, 7);
  const auto report = obs::diagnose_divergence(clean, faulty);
  ASSERT_TRUE(report.diverged()) << report.explanation;
  EXPECT_EQ(report.first_divergent_round, 7u);
  // Same kind, same counts, same events — only the payload fingerprint
  // moved, and the explanation says so.
  EXPECT_TRUE(report.counts_match) << report.explanation;
  EXPECT_TRUE(report.kind_deltas.empty());
  EXPECT_GT(report.probes, 0u);
  EXPECT_NE(report.explanation.find("first divergent round"),
            std::string::npos);
  // Identical inputs stay identical (the bisection has a fixed point).
  const auto same = obs::diagnose_divergence(clean, clean);
  EXPECT_EQ(same.verdict, obs::DivergenceReport::Verdict::kIdentical);
}

TEST(Doctor, DivergentCrashScheduleIsExplainedWithKindAndEventDeltas) {
  const auto a = crash_journal(41, false, false);
  const auto b = crash_journal(42, false, false);
  const auto report = obs::diagnose_divergence(a, b);
  ASSERT_TRUE(report.diverged());
  EXPECT_NE(report.explanation.find("round"), std::string::npos);
}

TEST(Doctor, IncompatibleJournalsAreIncomparable) {
  auto a = crash_journal(41, false, false);
  auto b = a;
  b.algorithm = "byz";
  EXPECT_EQ(obs::diagnose_divergence(a, b).verdict,
            obs::DivergenceReport::Verdict::kIncomparable);
}

TEST(Doctor, ExplainsAForcedAuditFailureWithPhaseAndWindow) {
  sim::RunStats stats;
  const auto data = crash_journal(41, false, false, 0, &stats);
  obs::BudgetParams params;
  params.algorithm = "crash";
  params.n = data.n;
  params.f = data.f;
  params.namespace_size = 5ull * data.n * data.n;
  // Squeeze every envelope to a fraction of the measured run: the audit
  // must fail, rank the phases by overshoot, and name the worst one with
  // its round window.
  params.slack = 1e-6;
  const auto diagnosis = obs::diagnose_audit(params, data);
  EXPECT_FALSE(diagnosis.ok);
  ASSERT_FALSE(diagnosis.phases.empty());
  EXPECT_TRUE(diagnosis.phases.front().violated);
  EXPECT_GT(diagnosis.phases.front().overshoot, 1.0);
  EXPECT_GE(diagnosis.phases.front().window_end,
            diagnosis.phases.front().window_begin);
  EXPECT_FALSE(diagnosis.dominant_term.empty());
  EXPECT_NE(diagnosis.explanation.find("FAIL"), std::string::npos);
  EXPECT_NE(diagnosis.explanation.find("rounds"), std::string::npos);
  // And the same journal passes at slack 1 (the run is within budget).
  params.slack = 1.0;
  const auto ok = obs::diagnose_audit(params, data);
  EXPECT_TRUE(ok.ok) << ok.explanation;
  EXPECT_NE(ok.explanation.find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace renaming
