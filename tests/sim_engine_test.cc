// Tests for the synchronous engine: round semantics, delivery, crash
// semantics (including mid-send partial delivery), authentication, and
// statistics accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/adversary.h"
#include "sim/auth.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "sim/node.h"

namespace renaming::sim {
namespace {

constexpr MsgKind kPing = 7;

/// Broadcasts one ping per round and records everything it receives.
class PingNode : public Node {
 public:
  PingNode(NodeIndex self, Round rounds) : self_(self), rounds_(rounds) {}

  void send(Round, Outbox& out) override {
    out.broadcast(make_message(kPing, 32, static_cast<std::uint64_t>(self_)));
  }

  void receive(Round round, InboxView inbox) override {
    executed_ = round;
    for (const Message& m : inbox) senders_.push_back(m.sender);
  }

  bool done() const override { return executed_ >= rounds_; }

  std::vector<NodeIndex> senders_;
  Round executed_ = 0;

 protected:
  NodeIndex self_;
  Round rounds_;
};

std::vector<std::unique_ptr<Node>> ping_system(NodeIndex n, Round rounds) {
  std::vector<std::unique_ptr<Node>> nodes;
  for (NodeIndex v = 0; v < n; ++v) {
    nodes.push_back(std::make_unique<PingNode>(v, rounds));
  }
  return nodes;
}

TEST(Engine, AllToAllDeliveryAndCounts) {
  const NodeIndex n = 5;
  Engine engine(ping_system(n, 2));
  const RunStats stats = engine.run(10);
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.total_messages, 2ull * n * n);
  EXPECT_EQ(stats.total_bits, 2ull * n * n * 32);
  EXPECT_EQ(stats.max_message_bits, 32u);
  for (NodeIndex v = 0; v < n; ++v) {
    const auto& node = dynamic_cast<const PingNode&>(engine.node(v));
    // 2 rounds x n senders, including self-delivery.
    EXPECT_EQ(node.senders_.size(), 2u * n);
  }
}

TEST(Engine, StopsWhenAllDone) {
  Engine engine(ping_system(3, 1));
  const RunStats stats = engine.run(100);
  EXPECT_EQ(stats.rounds, 1u);
}

TEST(Engine, RespectsMaxRounds) {
  Engine engine(ping_system(3, 1000));
  const RunStats stats = engine.run(4);
  EXPECT_EQ(stats.rounds, 4u);
}

/// Adversary that crashes one fixed victim in a fixed round keeping a
/// prefix of its outbox.
class ScriptedCrash final : public CrashAdversary {
 public:
  ScriptedCrash(NodeIndex victim, Round when, std::uint32_t keep_prefix)
      : victim_(victim), when_(when), keep_prefix_(keep_prefix) {}

  std::vector<CrashOrder> decide(const AdversaryView& view) override {
    if (view.round != when_) return {};
    CrashOrder o;
    o.victim = victim_;
    for (std::uint32_t i = 0; i < keep_prefix_; ++i) o.keep.push_back(i);
    return {o};
  }

  std::uint64_t budget() const override { return 1; }

 private:
  NodeIndex victim_;
  Round when_;
  std::uint32_t keep_prefix_;
};

TEST(Engine, MidSendCrashDeliversOnlyKeptSubset) {
  const NodeIndex n = 4;
  // Victim 0 crashes in round 1 after "sending" only 2 of its 4 messages.
  Engine engine(ping_system(n, 2),
                std::make_unique<ScriptedCrash>(0, 1, 2));
  const RunStats stats = engine.run(10);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_FALSE(engine.alive(0));
  // Round 1: victim sent 2, others sent 4 each => 2 + 3*4 = 14.
  // Round 2: 3 alive senders x 4 links = 12.
  EXPECT_EQ(stats.per_round[0].messages, 14u);
  EXPECT_EQ(stats.per_round[1].messages, 12u);
  // Outbox order is deterministic (dest 0,1,2,3): nodes 0 and 1 received
  // the victim's round-1 ping, nodes 2 and 3 did not.
  int got = 0;
  for (NodeIndex v = 1; v < n; ++v) {
    const auto& node = dynamic_cast<const PingNode&>(engine.node(v));
    for (Round r = 0; r < 1; ++r) {
      // count sender-0 pings across both rounds
    }
    for (NodeIndex s : node.senders_) got += (s == 0);
  }
  EXPECT_EQ(got, 1);  // only node 1 (dest index 1) saw the kept prefix
}

TEST(Engine, CrashedNodeNeverActsAgain) {
  Engine engine(ping_system(3, 5), std::make_unique<ScriptedCrash>(1, 2, 0));
  engine.run(5);
  const auto& victim = dynamic_cast<const PingNode&>(engine.node(1));
  EXPECT_EQ(victim.executed_, 1u);  // last receive was round 1
  // Remaining rounds have only 2 senders.
  EXPECT_EQ(engine.stats().per_round[4].messages, 2u * 3u);
}

/// A Byzantine node that tries to forge its origin.
class SpooferNode final : public PingNode {
 public:
  using PingNode::PingNode;
  void send(Round, Outbox& out) override {
    Message m = make_message(kPing, 32, static_cast<std::uint64_t>(self_));
    m.claimed_sender = (self_ + 1) % 3;  // masquerade as a neighbour
    for (NodeIndex d = 0; d < 3; ++d) out.send(d, m);
  }
};

TEST(Engine, AuthenticationDropsSpoofedMessages) {
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<PingNode>(0, 1));
  nodes.push_back(std::make_unique<SpooferNode>(1, 1));
  nodes.push_back(std::make_unique<PingNode>(2, 1));
  Engine engine(std::move(nodes));
  engine.mark_byzantine(1);
  const RunStats stats = engine.run(3);
  EXPECT_EQ(stats.spoofs_rejected, 3u);
  EXPECT_EQ(stats.byzantine, 1u);
  // Honest nodes saw only the two honest senders.
  for (NodeIndex v : {NodeIndex{0}, NodeIndex{2}}) {
    const auto& node = dynamic_cast<const PingNode&>(engine.node(v));
    for (NodeIndex s : node.senders_) EXPECT_NE(s, 1u);
  }
}

TEST(Engine, RandomCrashAdversaryHonoursBudget) {
  Engine engine(ping_system(50, 20),
                std::make_unique<RandomCrashAdversary>(7, 0.3, 123));
  const RunStats stats = engine.run(20);
  EXPECT_LE(stats.crashes, 7u);
  EXPECT_GT(stats.crashes, 0u);
}

TEST(Authenticator, TagRoundTripAndTamperDetection) {
  Authenticator auth(0xDEADBEEF);
  Message m = make_message(kPing, 32, 1ULL, 2ULL, 3ULL);
  m.claimed_sender = 4;
  const std::uint64_t t = auth.tag(m);
  EXPECT_TRUE(auth.verify(m, t));
  Message tampered = m;
  tampered.w[1] = 99;
  EXPECT_FALSE(auth.verify(tampered, t));
  Message respoofed = m;
  respoofed.claimed_sender = 5;
  EXPECT_FALSE(auth.verify(respoofed, t));
  Authenticator other_key(0xDEADBEF0);
  EXPECT_FALSE(other_key.verify(m, t));
}


TEST(Engine, PerRoundStatsSumToTotals) {
  Engine engine(ping_system(13, 7),
                std::make_unique<RandomCrashAdversary>(5, 0.2, 42));
  const RunStats stats = engine.run(7);
  std::uint64_t messages = 0, bits = 0, crashes = 0;
  for (const RoundStats& r : stats.per_round) {
    messages += r.messages;
    bits += r.bits;
    crashes += r.crashes;
  }
  EXPECT_EQ(messages, stats.total_messages);
  EXPECT_EQ(bits, stats.total_bits);
  EXPECT_EQ(crashes, stats.crashes);
  EXPECT_EQ(stats.per_round.size(), stats.rounds);
}

TEST(Engine, ByzantineNodesNeverBlockTermination) {
  // A Byzantine node that is never "done" must not keep the engine alive
  // once every correct node has finished.
  class NeverDone final : public Node {
   public:
    void send(Round, Outbox&) override {}
    void receive(Round, InboxView) override {}
    bool done() const override { return false; }
  };
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.push_back(std::make_unique<PingNode>(0, 2));
  nodes.push_back(std::make_unique<NeverDone>());
  Engine engine(std::move(nodes));
  engine.mark_byzantine(1);
  const RunStats stats = engine.run(1000);
  EXPECT_EQ(stats.rounds, 2u);
}

TEST(Engine, CrashOrderKeepIndicesMayBeUnsorted) {
  // The adversary may hand back keep-indices in any order; delivery must
  // honour the set regardless.
  class UnsortedKeep final : public CrashAdversary {
   public:
    std::vector<CrashOrder> decide(const AdversaryView& view) override {
      if (view.round != 1) return {};
      CrashOrder o;
      o.victim = 0;
      o.keep = {2, 0};  // deliberately unsorted
      return {o};
    }
    std::uint64_t budget() const override { return 1; }
  };
  Engine engine(ping_system(3, 2), std::make_unique<UnsortedKeep>());
  const RunStats stats = engine.run(3);
  EXPECT_EQ(stats.per_round[0].messages, 2u + 3u + 3u);
}

TEST(OutboxBroadcastIncludesSelf, Basic) {
  Outbox out(2, 4);
  out.broadcast(make_message(kPing, 8, 0ULL));
  // Compressed: one stored entry, four logical messages.
  ASSERT_EQ(out.entries().size(), 1u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.entries().front().first, Outbox::kBroadcast);
  out.expand();
  ASSERT_EQ(out.entries().size(), 4u);
  bool self_seen = false;
  for (const auto& [dest, msg] : out.entries()) self_seen |= (dest == 2);
  EXPECT_TRUE(self_seen);
}

}  // namespace
}  // namespace renaming::sim
