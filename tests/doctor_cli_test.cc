// Exit-code contract of the renaming_doctor CLI on imperfect inputs.
//
// tools/renaming_doctor.cpp documents diff as 0 = identical, 1 = diverged,
// 2 = incomparable or I/O error. The library-level verdicts are covered by
// obs_journal_test on full journals; this suite pins the BINARY's exit
// codes on the inputs a diagnosis session actually meets: truncated files
// (a run killed mid-write) and ring-mode journals (bounded --journal-rounds
// recordings whose windows may or may not overlap). The binary path is
// injected at configure time (RENAMING_DOCTOR_BIN, tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/journal.h"

namespace renaming {
namespace {

/// One seeded crash run with a (possibly ring-bounded) journal attached.
obs::JournalData crash_journal(std::uint64_t seed, std::size_t capacity = 0) {
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, seed);
  crash::CrashParams params;
  params.election_constant = 3.0;
  auto adversary = std::make_unique<crash::CommitteeHunter>(
      12, crash::CommitteeHunter::Mode::kMidResponse, seed, 0.5);
  obs::Journal journal(capacity);
  crash::run_crash_renaming(cfg, params, std::move(adversary),
                            /*trace=*/nullptr, /*telemetry=*/nullptr,
                            &journal);
  return journal.data();
}

std::string write_journal(const std::string& name,
                          const obs::JournalData& data) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  obs::write_journal_binary(out, data);
  return path;
}

std::string write_bytes(const std::string& name, const std::string& bytes) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

int doctor_diff(const std::string& a, const std::string& b) {
  const std::string cmd = std::string(RENAMING_DOCTOR_BIN) + " diff " + a +
                          " " + b + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

TEST(DoctorCli, DiffIdenticalFullJournalsExitsZero) {
  const auto path = write_journal("dr_full_a.bin", crash_journal(41));
  EXPECT_EQ(doctor_diff(path, path), 0);
}

TEST(DoctorCli, DiffDivergedJournalsExitsOne) {
  const auto a = write_journal("dr_seed41.bin", crash_journal(41));
  const auto b = write_journal("dr_seed42.bin", crash_journal(42));
  EXPECT_EQ(doctor_diff(a, b), 1);
}

TEST(DoctorCli, DiffTruncatedJournalExitsTwo) {
  const auto full = crash_journal(41);
  std::ostringstream buf;
  obs::write_journal_binary(buf, full);
  const std::string bytes = buf.str();
  const auto good = write_journal("dr_good.bin", full);
  const auto cut =
      write_bytes("dr_truncated.bin", bytes.substr(0, bytes.size() / 2));
  // Either argument order: a load failure is 2, never a crash and never a
  // bogus "identical" verdict.
  EXPECT_EQ(doctor_diff(cut, good), 2);
  EXPECT_EQ(doctor_diff(good, cut), 2);
}

TEST(DoctorCli, DiffRingJournalAgainstFullUsesTheOverlap) {
  // A 5-record ring holds exactly the tail of the same run's full journal
  // (obs_journal_test pins this), so the overlapping window compares
  // identical: exit 0 even though the ring is incomplete.
  const auto full = write_journal("dr_ring_full.bin", crash_journal(41));
  const auto ring = write_journal("dr_ring.bin", crash_journal(41, 5));
  EXPECT_EQ(doctor_diff(ring, full), 0);
  EXPECT_EQ(doctor_diff(full, ring), 0);
}

TEST(DoctorCli, DiffDisjointRingWindowsExitsTwo) {
  // Two ring windows of the same run that do not intersect: the head of
  // the recording vs its tail. No overlapping round — incomparable.
  const auto data = crash_journal(41);
  ASSERT_GT(data.records.size(), 10u);
  obs::JournalData head = data;
  head.records.assign(data.records.begin(), data.records.begin() + 5);
  obs::JournalData tail = data;
  tail.records.assign(data.records.end() - 5, data.records.end());
  tail.dropped_rounds = data.records.size() - 5;
  const auto a = write_journal("dr_head.bin", head);
  const auto b = write_journal("dr_tail.bin", tail);
  EXPECT_EQ(doctor_diff(a, b), 2);
}

}  // namespace
}  // namespace renaming
