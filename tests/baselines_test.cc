// Tests for the Table 1 baselines: the naive floor, the CHT/Okun-style
// all-to-all crash renaming, and the OBG-style Byzantine renaming.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/cht_crash.h"
#include "baselines/claiming.h"
#include "baselines/early_deciding.h"
#include "baselines/naive.h"
#include "baselines/obg_byzantine.h"
#include "common/math.h"
#include "sim/adversary.h"

namespace renaming::baselines {
namespace {

TEST(Naive, FaultFreeCorrectAndQuadratic) {
  const NodeIndex n = 100;
  const auto cfg = SystemConfig::random(n, n * n * 5, 1);
  const auto result = run_naive_renaming(cfg);
  EXPECT_TRUE(result.report.ok(true));  // also order-preserving
  EXPECT_EQ(result.stats.total_messages, static_cast<std::uint64_t>(n) * n);
  EXPECT_EQ(result.stats.rounds, 1u);
}

TEST(Naive, MidSendCrashBreaksUniqueness) {
  // Negative control: a crash mid-broadcast splits the views and produces
  // duplicates — renaming is not just "collect and sort".
  const NodeIndex n = 32;
  bool violated = false;
  for (std::uint64_t seed = 1; seed <= 30 && !violated; ++seed) {
    const auto cfg = SystemConfig::random(n, n * n * 5, seed);
    auto adversary = std::make_unique<sim::RandomCrashAdversary>(4, 1.0, seed);
    const auto result = run_naive_renaming(cfg, std::move(adversary));
    violated = !result.report.unique;
  }
  EXPECT_TRUE(violated) << "expected at least one uniqueness violation";
}

TEST(ChtCrash, FaultFreeAllSizes) {
  for (NodeIndex n : {2u, 3u, 5u, 16u, 33u, 100u, 256u}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n);
    const auto result = run_cht_renaming(cfg);
    EXPECT_TRUE(result.report.ok())
        << "n=" << n << " : "
        << (result.report.violations.empty() ? ""
                                             : result.report.violations[0]);
    EXPECT_LE(result.stats.rounds, ceil_log2(n) + 1);
  }
}

TEST(ChtCrash, QuadraticMessageCost) {
  const NodeIndex n = 128;
  const auto cfg = SystemConfig::random(n, n * n * 5, 3);
  const auto result = run_cht_renaming(cfg);
  ASSERT_TRUE(result.report.ok());
  // Every round is all-to-all: exactly n^2 * rounds messages.
  EXPECT_EQ(result.stats.total_messages,
            static_cast<std::uint64_t>(n) * n * result.stats.rounds);
}

TEST(ChtCrash, SurvivesAggressiveMidSendCrashes) {
  const NodeIndex n = 64;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, seed);
    auto adversary =
        std::make_unique<sim::RandomCrashAdversary>(n / 2, 0.15, seed * 7);
    const auto result = run_cht_renaming(cfg, std::move(adversary));
    EXPECT_TRUE(result.report.ok())
        << "seed=" << seed << " : "
        << (result.report.violations.empty() ? ""
                                             : result.report.violations[0]);
  }
}

TEST(ChtCrash, SurvivesNearTotalCrashes) {
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, 77);
  auto adversary = std::make_unique<sim::RandomCrashAdversary>(n - 1, 0.5, 5);
  const auto result = run_cht_renaming(cfg, std::move(adversary));
  EXPECT_TRUE(result.report.ok());
}

TEST(ObgByzantine, FaultFree) {
  for (NodeIndex n : {4u, 16u, 64u}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n + 1);
    const auto result = run_obg_renaming(cfg);
    EXPECT_TRUE(result.report.ok(true)) << "n=" << n;
  }
}

TEST(ObgByzantine, BigMessagesAreItsSignature) {
  // The baseline ships Omega(n log N)-bit messages — that is the Table 1
  // row the paper's O(log N)-bit algorithms improve on.
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, 2);
  const auto result = run_obg_renaming(cfg);
  ASSERT_TRUE(result.report.ok(true));
  EXPECT_GE(result.stats.max_message_bits,
            n * ceil_log2(cfg.namespace_size) / 2);
}


TEST(EarlyDeciding, FaultFreeDecidesInTwoRounds) {
  for (NodeIndex n : {4u, 32u, 128u}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n + 9);
    const auto result = run_early_deciding_renaming(cfg);
    EXPECT_TRUE(result.report.ok(true)) << "n=" << n;
    EXPECT_EQ(result.max_decision_round, 2u) << "n=" << n;
  }
}

TEST(EarlyDeciding, DecisionRoundTracksFaults) {
  // The early-deciding property of Table 1 row 3: rounds scale with the
  // number of crashes that actually happen, not with n.
  const NodeIndex n = 128;
  Round prev = 0;
  for (std::uint64_t f : {0ull, 4ull, 16ull, 48ull}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, 71);
    auto adversary =
        std::make_unique<sim::RandomCrashAdversary>(f, 0.5, f * 3 + 1);
    const auto result = run_early_deciding_renaming(cfg, std::move(adversary));
    ASSERT_TRUE(result.report.ok()) << "f=" << f;
    EXPECT_LE(result.max_decision_round, 2 * f + 2) << "f=" << f;
    EXPECT_GE(result.max_decision_round, prev > 2 ? 2u : prev) << "f=" << f;
    prev = result.max_decision_round;
  }
}

TEST(EarlyDeciding, SurvivesChaosMidSendCrashes) {
  const NodeIndex n = 64;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, seed + 400);
    auto adversary =
        std::make_unique<sim::ChaosCrashAdversary>(n / 2, 0.2, seed * 19);
    const auto result = run_early_deciding_renaming(cfg, std::move(adversary));
    EXPECT_TRUE(result.report.ok())
        << "seed=" << seed << " : "
        << (result.report.violations.empty() ? ""
                                             : result.report.violations[0]);
  }
}

TEST(EarlyDeciding, BigMessagesAreItsPrice) {
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, 5);
  const auto result = run_early_deciding_renaming(cfg);
  ASSERT_TRUE(result.report.ok(true));
  EXPECT_GE(result.stats.max_message_bits,
            n * ceil_log2(cfg.namespace_size) / 2);
}


TEST(Claiming, FaultFreeAllSizes) {
  for (NodeIndex n : {2u, 5u, 16u, 64u, 256u}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n + 13);
    const auto result = run_claiming_renaming(cfg);
    EXPECT_TRUE(result.report.ok())
        << "n=" << n << " : "
        << (result.report.violations.empty() ? ""
                                             : result.report.violations[0]);
  }
}

TEST(Claiming, RoundsGrowLogarithmically) {
  // A constant fraction of the undecided nodes wins each round, so the
  // round count grows like log n: explicit cap 6 * ceil(log2 n) + 6.
  for (NodeIndex n : {64u, 256u, 1024u}) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n + 17);
    const auto result = run_claiming_renaming(cfg);
    ASSERT_TRUE(result.report.ok()) << "n=" << n;
    EXPECT_LE(result.stats.rounds, 6 * ceil_log2(n) + 6) << "n=" << n;
  }
}

TEST(Claiming, SurvivesChaosCrashes) {
  const NodeIndex n = 96;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, seed + 500);
    auto adversary =
        std::make_unique<sim::ChaosCrashAdversary>(n / 2, 0.15, seed * 23);
    const auto result = run_claiming_renaming(cfg, std::move(adversary));
    EXPECT_TRUE(result.report.ok())
        << "seed=" << seed << " : "
        << (result.report.violations.empty() ? ""
                                             : result.report.violations[0]);
  }
}

TEST(Claiming, RecyclesSlotsGrabbedByGhosts) {
  // Kill half the nodes *while they claim* in the very first rounds; the
  // survivors must still end with a full, unique assignment — which is
  // only possible if ghost-held slots return to the pool.
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, 601);
  auto adversary = std::make_unique<sim::ChaosCrashAdversary>(n / 2, 0.9, 77);
  const auto result = run_claiming_renaming(cfg, std::move(adversary));
  EXPECT_TRUE(result.report.ok());
  EXPECT_GT(result.stats.crashes, 0u);
}

using ObgParam = std::tuple<NodeIndex, int, int>;

class ObgSweep : public ::testing::TestWithParam<ObgParam> {};

TEST_P(ObgSweep, SurvivesImplementedStrategies) {
  const auto [n, f_div, behaviour_id] = GetParam();
  const NodeIndex f = f_div == 0 ? 0 : n / f_div;
  const auto cfg =
      SystemConfig::random(n, static_cast<std::uint64_t>(n) * n * 5, n * 31 + f);
  std::vector<NodeIndex> byz;
  for (NodeIndex i = 0; i < f; ++i) byz.push_back(i * (n / (f + 1)) + 1);
  const auto behaviour = static_cast<ObgByzBehaviour>(behaviour_id);
  const auto result = run_obg_renaming(cfg, byz, behaviour);
  EXPECT_TRUE(result.report.ok())
      << "n=" << n << " f=" << f << " behaviour=" << behaviour_id << " : "
      << (result.report.violations.empty() ? ""
                                           : result.report.violations[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ObgSweep,
    ::testing::Combine(::testing::Values<NodeIndex>(16, 48, 96),
                       ::testing::Values(0, 8, 4),  // f = 0, n/8, n/4
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace renaming::baselines
