// The Section 3.2 negative experiment: an adaptive adversary that corrupts
// committee members the moment they are elected defeats the committee-based
// algorithm, while a static adversary with the same budget does not.
#include <gtest/gtest.h>

#include "byzantine/adaptive.h"
#include "byzantine/byz_renaming.h"
#include "byzantine/strategies.h"

namespace renaming::byzantine {
namespace {

ByzParams params_for_test() {
  ByzParams p;
  p.pool_constant = 3.0;
  p.shared_seed = 41;
  return p;
}

TEST(Adaptive, ZeroBudgetIsJustTheHonestRun) {
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 1);
  const auto r = run_adaptive_experiment(cfg, params_for_test(), 0);
  EXPECT_TRUE(r.report.ok(true));
  EXPECT_EQ(r.corrupted, 0u);
}

TEST(Adaptive, WholeCommitteeCorruptionWrecksTheRun) {
  // Budget >= committee size: every member turns silent right after the
  // election; no correct node can ever decide.
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 2);
  const auto r = run_adaptive_experiment(cfg, params_for_test(), n);
  EXPECT_GT(r.corrupted, 0u);
  EXPECT_EQ(r.corrupted, r.committee_size);
  EXPECT_FALSE(r.report.all_correct_decided);
  EXPECT_FALSE(r.report.ok());
}

TEST(Adaptive, StaticAdversaryWithSameBudgetFails) {
  // The same number of corruptions placed *before* the election (static
  // Carlo) lands mostly on non-members and the protocol succeeds — the
  // contrast the paper's discussion predicts. We corrupt the same count of
  // nodes as the adaptive run turned, spread statically.
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 2);
  const auto adaptive = run_adaptive_experiment(cfg, params_for_test(), n);
  ASSERT_GT(adaptive.corrupted, 0u);
  const NodeIndex f =
      std::min<NodeIndex>(static_cast<NodeIndex>(adaptive.corrupted),
                          (n / 3) - 1);
  std::vector<NodeIndex> byz;
  for (NodeIndex i = 0; i < f; ++i) byz.push_back((i * n) / (f + 1) + 1);
  const auto static_run = run_byz_renaming(
      cfg, params_for_test(), byz,
      [](NodeIndex, const SystemConfig&, const Directory&,
         const ByzParams&) -> std::unique_ptr<sim::Node> {
        return std::make_unique<SilentNode>();
      });
  EXPECT_TRUE(static_run.report.ok(true))
      << (static_run.report.violations.empty()
              ? ""
              : static_run.report.violations[0]);
}

TEST(Adaptive, PartialCorruptionBelowToleranceStillSucceeds) {
  // Corrupting fewer members than the phase-king tolerance t leaves the
  // committee functional: silence is within the Byzantine budget.
  const NodeIndex n = 96;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 3);
  // Find the committee size first (budget 0 dry run), then corrupt t of it.
  const auto dry = run_adaptive_experiment(cfg, params_for_test(), 0);
  ASSERT_TRUE(dry.report.ok(true));
  const std::uint64_t t = (dry.committee_size - 1) / 3;
  if (t == 0) GTEST_SKIP() << "committee too small for a meaningful test";
  const auto r = run_adaptive_experiment(cfg, params_for_test(), t);
  EXPECT_EQ(r.corrupted, t);
  EXPECT_TRUE(r.report.ok(true))
      << (r.report.violations.empty() ? "" : r.report.violations[0]);
}

}  // namespace
}  // namespace renaming::byzantine
