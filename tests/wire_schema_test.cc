// Wire-schema equivalence tests (src/sim/wire_schema.h).
//
// Two directions. First, the closed forms themselves: wire_bits() must
// evaluate the documented per-field formulas (Figure 1-3 layouts, the
// Byzantine control word, Table 1 baselines) at concrete contexts,
// including the variable-width floor (empty sets still cost one element)
// and the kVariableBitsCap clamp. Second, runtime equivalence: for every
// protocol, the per-kind bit ledger a real run accumulates must match
// `messages * wire_bits(kind)` exactly for fixed-layout kinds — at two
// (n, f) points each, so a width that accidentally depends on the wrong
// parameter cannot slip through — and for bulk identity-set kinds must be
// a positive multiple of the per-element width. This is the same
// invariant the BudgetAuditor enforces on honest-wire runs, checked here
// without envelopes in the way and including the variable kinds the
// auditor skips.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/cht_crash.h"
#include "baselines/claiming.h"
#include "baselines/early_deciding.h"
#include "baselines/naive.h"
#include "baselines/obg_byzantine.h"
#include "byzantine/byz_renaming.h"
#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/telemetry.h"
#include "sim/message_names.h"
#include "sim/wire_schema.h"

namespace renaming {
namespace {

// The ledger-equivalence tests need telemetry to actually record; with
// -DRENAMING_NO_TELEMETRY=ON the per-kind ledgers stay empty. Same skip
// policy as the budget auditor tests (docs/TOOLING.md §1).
#define RENAMING_REQUIRE_TELEMETRY()                             \
  if constexpr (!obs::kTelemetryEnabled) {                       \
    GTEST_SKIP() << "telemetry compiled out "                    \
                    "(RENAMING_NO_TELEMETRY)";                   \
  }                                                              \
  static_assert(true, "")

// Every kind a run touched must book bits consistent with its schema:
// fixed layouts exactly, bulk identity sets as a positive multiple of the
// per-element width (exactness per message needs the payload count, which
// the ledger deliberately does not retain).
void expect_ledger_matches_schema(const obs::Telemetry& telemetry,
                                  const SystemConfig& cfg) {
  const sim::wire::WireContext ctx{cfg.n, cfg.namespace_size};
  for (sim::MsgKind kind : sim::kRegisteredKinds) {
    const std::uint64_t messages = telemetry.kind_messages(kind);
    if (messages == 0) continue;
    const sim::wire::WireSchema* schema = sim::wire::schema_of_or_null(kind);
    ASSERT_NE(schema, nullptr) << "kind " << kind;
    const std::uint64_t bits = telemetry.kind_bits(kind);
    if (schema->variable) {
      const std::uint64_t per =
          sim::wire::width_bits(schema->fields[0].width, ctx);
      EXPECT_GE(bits, messages * per) << schema->name;
      EXPECT_EQ(bits % per, 0u) << schema->name;
      EXPECT_LE(bits, messages * sim::wire::kVariableBitsCap) << schema->name;
    } else {
      EXPECT_EQ(bits, messages * sim::wire::wire_bits(kind, ctx))
          << schema->name << " at n=" << cfg.n;
    }
  }
}

TEST(WireSchema, ClosedFormsAtPinnedContext) {
  // n = 48, N = 5 n^2 = 11520: ceil(lg N) = 14, ceil(lg n) = 6,
  // ceil(lg (n+1)) = 6.
  const sim::wire::WireContext ctx{48, 5ull * 48 * 48};
  EXPECT_EQ(sim::wire::wire_bits(1, ctx), 14u);            // COMMITTEE
  EXPECT_EQ(sim::wire::wire_bits(2, ctx), 14u + 6 + 6 + 8 + 8);  // STATUS
  EXPECT_EQ(sim::wire::wire_bits(3, ctx), sim::wire::wire_bits(2, ctx));
  EXPECT_EQ(sim::wire::wire_bits(10, ctx), 14u + 16);      // ELECT
  EXPECT_EQ(sim::wire::wire_bits(12, ctx), 61u + 6 + 16);  // VALIDATOR
  EXPECT_EQ(sim::wire::wire_bits(15, ctx), 6u + 8);        // NEW
  EXPECT_EQ(sim::wire::wire_bits(30, ctx), 14u);           // NAIVE_ID
  EXPECT_EQ(sim::wire::wire_bits(31, ctx), 14u + 6 + 6);   // CHT_STATUS
  EXPECT_EQ(sim::wire::wire_bits(50, ctx), 14u + 6);       // CLAIM
}

TEST(WireSchema, VariableWidthFloorAndClamp) {
  const sim::wire::WireContext ctx{48, 5ull * 48 * 48};  // 14 bits/element
  EXPECT_EQ(sim::wire::wire_bits(16, ctx, 7), 7u * 14);
  // Empty sets still cost one element so Message::bits stays positive.
  EXPECT_EQ(sim::wire::wire_bits(16, ctx, 0), 14u);
  // Oversized payloads clamp at the cap instead of overflowing uint32_t.
  EXPECT_EQ(sim::wire::wire_bits(16, ctx, 1ull << 40),
            sim::wire::kVariableBitsCap);
}

TEST(WireSchema, SchemaNamesMatchMessageRegistry) {
  for (const sim::wire::WireSchema& s : sim::wire::kWireSchemas) {
    EXPECT_STREQ(s.name, sim::message_name(s.kind));
  }
}

TEST(WireSchema, CrashRunLedgerMatchesSchema) {
  RENAMING_REQUIRE_TELEMETRY();
  // Point 1: faulty run (crash-model wire stays honest under crashes).
  {
    const NodeIndex n = 64;
    const auto cfg = SystemConfig::random(n, 5ull * n * n, 17);
    crash::CrashParams params;
    params.election_constant = 3.0;
    obs::Telemetry telemetry;
    auto adversary = std::make_unique<crash::CommitteeHunter>(
        16, crash::CommitteeHunter::Mode::kMidResponse, 9, 0.5);
    const auto result = crash::run_crash_renaming(
        cfg, params, std::move(adversary), nullptr, &telemetry);
    ASSERT_TRUE(result.report.ok());
    expect_ledger_matches_schema(telemetry, cfg);
  }
  // Point 2: different (n, N), failure-free.
  {
    const NodeIndex n = 96;
    const auto cfg = SystemConfig::random(n, 5ull * n * n, 23);
    crash::CrashParams params;
    params.election_constant = 3.0;
    obs::Telemetry telemetry;
    const auto result =
        crash::run_crash_renaming(cfg, params, nullptr, nullptr, &telemetry);
    ASSERT_TRUE(result.report.ok());
    expect_ledger_matches_schema(telemetry, cfg);
  }
}

TEST(WireSchema, ByzantineHonestRunLedgerMatchesSchema) {
  RENAMING_REQUIRE_TELEMETRY();
  // f = 0 on purpose: adversarial strategies self-declare widths (the
  // named probe constants), so per-kind exactness only holds honest-wire.
  for (const NodeIndex n : {NodeIndex{48}, NodeIndex{80}}) {
    const auto cfg = SystemConfig::random(n, 5ull * n * n, 700 + n);
    byzantine::ByzParams params;
    params.pool_constant = 4.0;
    params.shared_seed = 4242;
    obs::Telemetry telemetry;
    const auto result = byzantine::run_byz_renaming(cfg, params, {}, nullptr,
                                                    0, nullptr, &telemetry);
    ASSERT_TRUE(result.report.ok(true));
    expect_ledger_matches_schema(telemetry, cfg);
  }
}

TEST(WireSchema, BaselineRunLedgersMatchSchema) {
  RENAMING_REQUIRE_TELEMETRY();
  for (const NodeIndex n : {NodeIndex{48}, NodeIndex{72}}) {
    const auto cfg = SystemConfig::random(n, 5ull * n * n, 29u + n);
    {
      obs::Telemetry t;
      const auto r = baselines::run_naive_renaming(cfg, nullptr, &t);
      ASSERT_TRUE(r.report.ok());
      expect_ledger_matches_schema(t, cfg);
    }
    {
      obs::Telemetry t;
      const auto r = baselines::run_cht_renaming(cfg, nullptr, &t);
      ASSERT_TRUE(r.report.ok());
      expect_ledger_matches_schema(t, cfg);
    }
    {
      obs::Telemetry t;
      const auto r = baselines::run_claiming_renaming(cfg, nullptr, &t);
      ASSERT_TRUE(r.report.ok());
      expect_ledger_matches_schema(t, cfg);
    }
    {
      // OBG with no Byzantine nodes: honest wire, exercises the bulk
      // OBG_VECTOR / OBG_HALVING kinds.
      obs::Telemetry t;
      const auto r = baselines::run_obg_renaming(
          cfg, {}, baselines::ObgByzBehaviour::kSilent, &t);
      ASSERT_TRUE(r.report.ok());
      expect_ledger_matches_schema(t, cfg);
    }
    {
      obs::Telemetry t;
      const auto r = baselines::run_early_deciding_renaming(cfg, nullptr, &t);
      ASSERT_TRUE(r.report.ok());
      expect_ledger_matches_schema(t, cfg);
    }
  }
}

}  // namespace
}  // namespace renaming
