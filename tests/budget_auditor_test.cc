// BudgetAuditor tests (src/obs/budget.h, docs/OBSERVABILITY.md).
//
// Positive direction: every shipped algorithm, run at test scale with its
// documented constants, must fit inside the calibrated envelopes derived
// from Theorem 1.2 / Theorem 1.3 / Table 1 — the same check CI's
// bench-smoke gate runs. Negative direction: the auditor has teeth — an
// over-budget fixture, a run audited against the wrong (cheaper)
// algorithm's envelope, and a broken phase attribution must all FAIL.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/cht_crash.h"
#include "baselines/claiming.h"
#include "baselines/early_deciding.h"
#include "baselines/naive.h"
#include "baselines/obg_byzantine.h"
#include "byzantine/byz_renaming.h"
#include "byzantine/strategies.h"
#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/budget.h"
#include "obs/telemetry.h"

namespace renaming {
namespace {

// Positive-run tests below need the engine/protocol hooks to actually
// record traffic; with -DRENAMING_NO_TELEMETRY=ON the ledgers stay empty
// while RunStats are real, so the exact double-entry lines cannot hold.
// They auto-skip, same policy as the RENAMING_UNCHECKED death tests
// (docs/TOOLING.md §1). The negative fixtures (over-budget, quadratic,
// broken attribution, slack) run in every configuration.
#define RENAMING_REQUIRE_TELEMETRY()                             \
  if constexpr (!obs::kTelemetryEnabled) {                       \
    GTEST_SKIP() << "telemetry compiled out "                    \
                    "(RENAMING_NO_TELEMETRY)";                   \
  }                                                              \
  static_assert(true, "")

obs::BudgetParams base_params(const std::string& algorithm,
                              const SystemConfig& cfg, std::uint64_t f) {
  obs::BudgetParams p;
  p.algorithm = algorithm;
  p.n = cfg.n;
  p.f = f;
  p.namespace_size = cfg.namespace_size;
  return p;
}

TEST(BudgetAuditor, CrashRunPassesTheorem12Envelope) {
  RENAMING_REQUIRE_TELEMETRY();
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 17);
  crash::CrashParams params;
  params.election_constant = 3.0;
  obs::Telemetry telemetry;
  auto adversary = std::make_unique<crash::CommitteeHunter>(
      16, crash::CommitteeHunter::Mode::kMidResponse, 9, 0.5);
  const auto result = crash::run_crash_renaming(
      cfg, params, std::move(adversary), nullptr, &telemetry);
  ASSERT_TRUE(result.report.ok());

  auto p = base_params("crash", cfg, 16);
  p.committee_constant = params.election_constant;
  p.phase_multiplier = params.phase_multiplier;
  const auto report = obs::audit_run(p, result.stats, &telemetry);
  EXPECT_TRUE(report.ok()) << report.summary();
  // With telemetry the report carries per-phase lines + the double-entry
  // reconciliation.
  bool has_phase_line = false, has_double_entry = false;
  for (const auto& l : report.lines) {
    has_phase_line |= l.quantity.rfind("phase:", 0) == 0;
    has_double_entry |= l.quantity == "phase-attribution messages";
  }
  EXPECT_TRUE(has_phase_line);
  EXPECT_TRUE(has_double_entry);
}

TEST(BudgetAuditor, ByzantineRunPassesTheorem13Envelope) {
  RENAMING_REQUIRE_TELEMETRY();
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 777);
  byzantine::ByzParams params;
  params.pool_constant = 4.0;
  params.shared_seed = 4242;
  obs::Telemetry telemetry;
  const auto result = byzantine::run_byz_renaming(
      cfg, params, {5, 23, 41}, &byzantine::SplitReporter::make, 0, nullptr,
      &telemetry);
  ASSERT_TRUE(result.report.ok(true));

  auto p = base_params("byz", cfg, 3);
  p.committee_constant = params.pool_constant;
  const auto report = obs::audit_run(p, result.stats, &telemetry);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(BudgetAuditor, FullVectorAblationPassesItsOwnWiderEnvelope) {
  RENAMING_REQUIRE_TELEMETRY();
  const NodeIndex n = 40;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 23);
  byzantine::ByzParams params;
  params.pool_constant = 4.0;
  params.shared_seed = 8;
  params.use_fingerprints = false;  // ablation A2
  obs::Telemetry telemetry;
  const auto result = byzantine::run_byz_renaming(cfg, params, {}, nullptr, 0,
                                                  nullptr, &telemetry);
  ASSERT_TRUE(result.report.ok(true));

  auto p = base_params("byz-full", cfg, 0);
  p.committee_constant = params.pool_constant;
  const auto report = obs::audit_run(p, result.stats, &telemetry);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(BudgetAuditor, AllBaselinesPassTheirTable1Envelopes) {
  RENAMING_REQUIRE_TELEMETRY();
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 29);
  {
    obs::Telemetry t;
    const auto r = baselines::run_naive_renaming(cfg, nullptr, &t);
    const auto rep = obs::audit_run(base_params("naive", cfg, 0), r.stats, &t);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
  {
    obs::Telemetry t;
    const auto r = baselines::run_cht_renaming(cfg, nullptr, &t);
    const auto rep = obs::audit_run(base_params("cht", cfg, 0), r.stats, &t);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
  {
    obs::Telemetry t;
    const auto r = baselines::run_obg_renaming(
        cfg, {3, 11}, baselines::ObgByzBehaviour::kSplitAnnounce, &t);
    const auto rep = obs::audit_run(base_params("obg", cfg, 2), r.stats, &t);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
  {
    obs::Telemetry t;
    auto adversary = std::make_unique<sim::RandomCrashAdversary>(4, 0.02, 31);
    const auto r =
        baselines::run_early_deciding_renaming(cfg, std::move(adversary), &t);
    const auto rep = obs::audit_run(base_params("early", cfg, 4), r.stats, &t);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
  {
    obs::Telemetry t;
    const auto r = baselines::run_claiming_renaming(cfg, nullptr, &t);
    const auto rep =
        obs::audit_run(base_params("claiming", cfg, 0), r.stats, &t);
    EXPECT_TRUE(rep.ok()) << rep.summary();
  }
}

TEST(BudgetAuditor, OverBudgetFixtureFails) {
  // A synthetic run that blows the crash message envelope by orders of
  // magnitude: the auditor must flag messages AND bits, and headroom must
  // go negative.
  sim::RunStats stats;
  stats.per_round.push_back({});
  stats.rounds = 1;
  stats.note_messages(1u << 30, 64);
  SystemConfig cfg = SystemConfig::random(64, 5ull * 64 * 64, 1);
  const auto report =
      obs::audit_run(base_params("crash", cfg, 4), stats, nullptr);
  EXPECT_FALSE(report.ok());
  bool messages_flagged = false;
  for (const auto& l : report.lines) {
    if (l.quantity == "messages") {
      EXPECT_FALSE(l.ok);
      EXPECT_LT(l.headroom(), 0.0);
      messages_flagged = true;
    }
  }
  EXPECT_TRUE(messages_flagged);
  // ...and the summary names the violation.
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
  EXPECT_NE(report.summary().find("VIOLATION"), std::string::npos);
}

TEST(BudgetAuditor, QuadraticRunFailsTheSubquadraticEnvelope) {
  // Audit an n^2-per-round baseline against the paper's crash envelope:
  // the whole point of Theorem 1.2 is that this must not fit.
  const NodeIndex n = 256;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 37);
  const auto r = baselines::run_cht_renaming(cfg);
  ASSERT_TRUE(r.report.ok());
  auto p = base_params("crash", cfg, 0);
  const auto report = obs::audit_run(p, r.stats, nullptr);
  EXPECT_FALSE(report.ok()) << report.summary();
}

TEST(BudgetAuditor, BrokenPhaseAttributionFailsTheDoubleEntryCheck) {
  // Telemetry that saw different traffic than the stats (here: nothing at
  // all) must fail the exact reconciliation lines, slack notwithstanding.
  sim::RunStats stats;
  stats.per_round.push_back({});
  stats.rounds = 1;
  stats.note_messages(10, 32);
  obs::Telemetry empty;
  SystemConfig cfg = SystemConfig::random(64, 5ull * 64 * 64, 2);
  auto p = base_params("crash", cfg, 0);
  p.slack = 1e9;
  const auto report = obs::audit_run(p, stats, &empty);
  EXPECT_FALSE(report.ok());
}

TEST(BudgetAuditor, SlackScalesTheEnvelopes) {
  sim::RunStats stats;
  stats.per_round.push_back({});
  stats.rounds = 1;
  stats.note_messages(1u << 30, 64);
  SystemConfig cfg = SystemConfig::random(64, 5ull * 64 * 64, 3);
  auto p = base_params("crash", cfg, 4);
  ASSERT_FALSE(obs::audit_run(p, stats, nullptr).ok());
  p.slack = 1e6;  // a million-fold slack swallows the fixture
  EXPECT_TRUE(obs::audit_run(p, stats, nullptr).ok());
}

}  // namespace
}  // namespace renaming
