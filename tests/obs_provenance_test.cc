// Decision-provenance tests (obs/provenance.h, obs/doctor.h why/blame).
//
// The recorder's contract mirrors the journal's determinism but rides the
// telemetry fold: its exported RNPV bytes must be byte-identical across
// shard counts K and dense/sparse engine modes (the engine forces serial
// callbacks while a live recorder is attached), and under
// RENAMING_NO_TELEMETRY every entry point folds the pointer to nullptr, so
// a run with a recorder attached yields an EMPTY recording — zero events,
// zero cost. Tests that assert on recorded content therefore gate on
// obs::kTelemetryEnabled and assert emptiness in the folded config, so
// this file runs unchanged in both CI configurations.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "byzantine/byz_renaming.h"
#include "byzantine/strategies.h"
#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/doctor.h"
#include "obs/provenance.h"
#include "sim/engine.h"
#include "sim/parallel/plan.h"
#include "sim/parallel/worker_pool.h"

namespace renaming {
namespace {

std::string to_bytes(const obs::ProvenanceData& data) {
  std::ostringstream out;
  obs::write_provenance_binary(out, data);
  return out.str();
}

/// Forces the process-wide engine-mode default for one scope (same idiom
/// as tests/sparse_equivalence_test.cc).
class ModeGuard {
 public:
  explicit ModeGuard(sim::EngineMode mode) {
    sim::Engine::set_default_mode(mode);
  }
  ~ModeGuard() { sim::Engine::set_default_mode(sim::EngineMode::kAuto); }
};

/// Byzantine run with planted Spoofers — exercises protocol decision
/// events, engine spoof rejections and mark_faulty in one recording.
obs::ProvenanceData byz_prov(std::uint64_t seed,
                             obs::ProvenanceOptions opts = {},
                             sim::parallel::ShardPlan plan = {}) {
  const NodeIndex n = 40;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, seed);
  byzantine::ByzParams params;
  params.pool_constant = 4.0;
  params.shared_seed = seed;
  obs::Provenance prov(opts);
  byzantine::run_byz_renaming(cfg, params, {1, 7, 23},
                              &byzantine::Spoofer::make, 0,
                              /*trace=*/nullptr, /*telemetry=*/nullptr,
                              /*journal=*/nullptr, plan,
                              /*progress=*/nullptr, &prov);
  return prov.data();
}

/// Crash run under a mid-send CommitteeHunter — exercises committee
/// decisions, crash observations and the outbox-expansion slow path.
obs::ProvenanceData crash_prov(std::uint64_t seed,
                               obs::ProvenanceOptions opts = {},
                               sim::parallel::ShardPlan plan = {}) {
  const NodeIndex n = 48;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, seed);
  crash::CrashParams params;
  params.election_constant = 3.0;
  auto adversary = std::make_unique<crash::CommitteeHunter>(
      12, crash::CommitteeHunter::Mode::kMidResponse, seed, 0.5);
  obs::Provenance prov(opts);
  crash::run_crash_renaming(cfg, params, std::move(adversary),
                            /*trace=*/nullptr, /*telemetry=*/nullptr,
                            /*journal=*/nullptr, plan, /*progress=*/nullptr,
                            &prov);
  return prov.data();
}

// --- determinism contract --------------------------------------------------

TEST(Provenance, BytesIdenticalAcrossShardCounts) {
  const std::string serial_byz = to_bytes(byz_prov(21));
  const std::string serial_crash = to_bytes(crash_prov(21));
  sim::parallel::WorkerPool pool(4);
  for (unsigned shards : {1u, 2u, 8u}) {
    sim::parallel::ShardPlan plan;
    plan.pool = &pool;
    plan.shards = shards;
    EXPECT_EQ(serial_byz, to_bytes(byz_prov(21, {}, plan)))
        << "byz provenance bytes diverged at K=" << shards;
    EXPECT_EQ(serial_crash, to_bytes(crash_prov(21, {}, plan)))
        << "crash provenance bytes diverged at K=" << shards;
  }
}

TEST(Provenance, BytesIdenticalDenseVsSparse) {
  std::string dense_byz, dense_crash;
  {
    ModeGuard guard(sim::EngineMode::kDense);
    dense_byz = to_bytes(byz_prov(33));
    dense_crash = to_bytes(crash_prov(33));
  }
  ModeGuard guard(sim::EngineMode::kSparse);
  EXPECT_EQ(dense_byz, to_bytes(byz_prov(33)));
  EXPECT_EQ(dense_crash, to_bytes(crash_prov(33)));
}

TEST(Provenance, FoldsToEmptyUnderNoTelemetry) {
  const auto data = byz_prov(21);
  if (obs::kTelemetryEnabled) {
    EXPECT_GT(data.recorded_events, 0u);
    EXPECT_FALSE(data.events.empty());
    EXPECT_EQ(data.algorithm, "byz");
    EXPECT_EQ(data.faulty, (std::vector<NodeIndex>{1, 7, 23}));
  } else {
    // The entry point folds the pointer before any node or the engine
    // sees it: not a single event, not even run identity.
    EXPECT_EQ(data.recorded_events, 0u);
    EXPECT_TRUE(data.events.empty());
    EXPECT_TRUE(data.faulty.empty());
  }
}

// --- watch-set + horizon bounding ------------------------------------------

TEST(Provenance, WatchSetRetainsWatchedAndPinnedCausesOnly) {
  obs::ProvenanceOptions opts;
  opts.watch_nodes = {2};
  opts.horizon = 4;
  obs::Provenance prov(opts);
  prov.set_run_info("unit", 8, 0);
  prov.begin_run(8);
  EXPECT_TRUE(prov.watched(2));
  EXPECT_FALSE(prov.watched(3));

  // A hundred decisions at an unwatched node: recorded into the pending
  // ring, evicted as the horizon slides — except ones pinned as causes.
  for (int i = 0; i < 100; ++i) {
    prov.note_event(1, 3, obs::ProvEventKind::kNameProposal, 31,
                    static_cast<std::uint64_t>(i), 0, {});
  }
  // A watched decision citing node 3: its latest pending event gets
  // pinned into the retained set instead of degrading to "(evicted)".
  const std::uint64_t claim =
      prov.note_event(2, 2, obs::ProvEventKind::kNameClaim, 31, 7, 0,
                      {{3, 31, 12}});
  prov.end_run(2);

  const auto data = prov.data();
  EXPECT_EQ(data.watch_mode, 1);
  EXPECT_EQ(data.watch_nodes, (std::vector<NodeIndex>{2}));
  EXPECT_EQ(data.horizon, 4u);
  EXPECT_EQ(data.recorded_events, 101u);
  EXPECT_GT(data.dropped_events, 0u);
  EXPECT_FALSE(data.complete());
  // Retention invariant: everything recorded was either kept or dropped.
  EXPECT_EQ(data.recorded_events, data.dropped_events + data.events.size());
  ASSERT_LT(data.events.size(), 100u);

  const obs::ProvEvent* kept_claim = nullptr;
  for (const obs::ProvEvent& ev : data.events) {
    if (ev.id == claim) kept_claim = &ev;
  }
  ASSERT_NE(kept_claim, nullptr) << "watched decision must be retained";
  ASSERT_EQ(kept_claim->cause_count, 1);
  EXPECT_EQ(kept_claim->causes[0].sender, 3u);
  EXPECT_NE(kept_claim->causes[0].event, obs::kNoProvEvent)
      << "cause within the horizon must resolve to a retained event";
}

TEST(Provenance, SampleModeWatchesStridedNodes) {
  obs::ProvenanceOptions opts;
  opts.sample = 4;
  obs::Provenance prov(opts);
  prov.set_run_info("unit", 16, 0);
  prov.begin_run(16);
  EXPECT_TRUE(prov.watched(0));
  EXPECT_FALSE(prov.watched(1));
  prov.end_run(1);
  const auto data = prov.data();
  EXPECT_EQ(data.watch_mode, 2);
  EXPECT_EQ(data.watch_stride, 4u);
}

TEST(Provenance, WatchSetBoundsARealRun) {
  if (!obs::kTelemetryEnabled) GTEST_SKIP() << "recorder folded out";
  const auto full = byz_prov(21);
  obs::ProvenanceOptions opts;
  opts.sample = 8;
  opts.horizon = 256;
  const auto watched = byz_prov(21, opts);
  EXPECT_LT(watched.events.size(), full.events.size());
  EXPECT_EQ(watched.recorded_events,
            watched.dropped_events + watched.events.size());
}

// --- RNPV v1 round-trip + rejection ----------------------------------------

TEST(Provenance, BinaryRoundTrips) {
  const auto data = byz_prov(21);
  const std::string bytes = to_bytes(data);
  std::istringstream in(bytes);
  obs::ProvenanceData back;
  std::string error;
  ASSERT_TRUE(obs::read_provenance_binary(in, &back, &error)) << error;
  EXPECT_EQ(back.algorithm, data.algorithm);
  EXPECT_EQ(back.n, data.n);
  EXPECT_EQ(back.f, data.f);
  EXPECT_EQ(back.rounds, data.rounds);
  EXPECT_EQ(back.faulty, data.faulty);
  EXPECT_EQ(back.events, data.events);
  EXPECT_EQ(to_bytes(back), bytes);
}

TEST(Provenance, TruncatedAndCorruptedBytesAreRejected) {
  const std::string bytes = to_bytes(byz_prov(21));
  obs::ProvenanceData out;
  std::string error;
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{7},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, cut));
    error.clear();
    EXPECT_FALSE(obs::read_provenance_binary(in, &out, &error))
        << "truncation at " << cut << " must be rejected";
    EXPECT_FALSE(error.empty());
  }
  std::string magic = bytes;
  magic[0] ^= 0x5a;
  std::istringstream in(magic);
  error.clear();
  EXPECT_FALSE(obs::read_provenance_binary(in, &out, &error))
      << "a wrong magic must be rejected";
}

// --- renaming_doctor why / blame -------------------------------------------

TEST(ProvenanceDoctor, WhyRendersACausalChain) {
  if (!obs::kTelemetryEnabled) GTEST_SKIP() << "recorder folded out";
  const auto data = byz_prov(21);
  const auto report = obs::diagnose_why(data, 0);
  EXPECT_TRUE(report.found);
  EXPECT_TRUE(report.watched);
  EXPECT_GT(report.chain_events, 0u);
  EXPECT_NE(report.final_name, kNoNewId);
  EXPECT_FALSE(report.explanation.empty());
}

TEST(ProvenanceDoctor, WhyReportsUnwatchedNodes) {
  if (!obs::kTelemetryEnabled) GTEST_SKIP() << "recorder folded out";
  obs::ProvenanceOptions opts;
  opts.watch_nodes = {0};
  const auto data = byz_prov(21, opts);
  // An unwatched node may still have retained events (pinned as causes of
  // the watched chain), but the report must say it is outside the
  // watch-set so the user knows the chain is partial.
  EXPECT_FALSE(obs::diagnose_why(data, 5).watched);

  // A node with no retained events at all: found = false and the
  // explanation points at the watch-set flags.
  obs::Provenance empty(opts);
  empty.set_run_info("unit", 8, 0);
  empty.begin_run(8);
  empty.note_event(1, 0, obs::ProvEventKind::kNameClaim, 30, 1, 0, {});
  empty.end_run(1);
  const auto report = obs::diagnose_why(empty.data(), 5);
  EXPECT_FALSE(report.found);
  EXPECT_FALSE(report.watched);
  EXPECT_NE(report.explanation.find("--trace-nodes"), std::string::npos);
}

TEST(ProvenanceDoctor, BlameNamesThePlantedSpoofers) {
  const auto data = byz_prov(21);
  const auto report = obs::diagnose_blame(data);
  if (!obs::kTelemetryEnabled) {
    EXPECT_TRUE(report.ranking.empty());
    return;
  }
  ASSERT_FALSE(report.ranking.empty());
  // Every ranked node is a planted Spoofer (the engine attributes spoof
  // rejections to the TRUE transport origin, not the claimed sender).
  for (const obs::BlameEntry& e : report.ranking) {
    EXPECT_TRUE(e.node == 1 || e.node == 7 || e.node == 23)
        << "blamed node " << e.node << " was not planted";
  }
  std::uint64_t spoof_bits = 0;
  for (const obs::BlameEntry& e : report.ranking) spoof_bits += e.spoof_bits;
  EXPECT_GT(spoof_bits, 0u) << "Spoofer forgeries must surface in blame";
  EXPECT_FALSE(report.explanation.empty());
}

}  // namespace
}  // namespace renaming
