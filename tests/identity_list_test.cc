// Tests for IdentityList: cross-checked against the dense BitVec + the
// reference SetFingerprint on random and adversarial contents.
#include <gtest/gtest.h>

#include "byzantine/identity_list.h"
#include "common/bitvec.h"
#include "common/prng.h"
#include "hashing/fingerprint.h"

namespace renaming::byzantine {
namespace {

class IdentityListTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kN = 5000;
  hashing::SharedRandomness beacon_{4242};
  hashing::SetFingerprint reference_{beacon_};
};

TEST_F(IdentityListTest, EmptyListSummaries) {
  IdentityList list(kN, beacon_);
  const auto s = list.summarize(Interval(1, kN));
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.fingerprint, 0u);
  EXPECT_EQ(list.rank(kN), 0u);
}

TEST_F(IdentityListTest, InsertIsIdempotent) {
  IdentityList list(kN, beacon_);
  list.insert(17);
  list.insert(17);
  list.insert(17);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.summarize(Interval(1, kN)).count, 1u);
}

TEST_F(IdentityListTest, MatchesDenseReferenceOnRandomContents) {
  // SetFingerprint::of_range is 0-based (position i <-> identity i+1), so
  // the dense mirror stores identity `id` at position `id - 1`.
  IdentityList list(kN, beacon_);
  BitVec dense(kN);
  Xoshiro256 rng(9);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t id = 1 + rng.below(kN);
    list.insert(id);
    dense.set(id - 1);
  }
  EXPECT_EQ(list.size(), dense.count());
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t lo = 1 + rng.below(kN);
    std::uint64_t hi = 1 + rng.below(kN);
    if (lo > hi) std::swap(lo, hi);
    const auto s = list.summarize(Interval(lo, hi));
    ASSERT_EQ(s.count, dense.count_range(lo - 1, hi - 1)) << lo << ".." << hi;
    ASSERT_EQ(s.fingerprint, reference_.of_range(dense, lo - 1, hi - 1))
        << lo << ".." << hi;
  }
}

TEST_F(IdentityListTest, RankMatchesDense) {
  IdentityList list(kN, beacon_);
  BitVec dense(kN + 1);
  Xoshiro256 rng(10);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t id = 1 + rng.below(kN);
    list.insert(id);
    dense.set(id);
  }
  for (std::uint64_t probe : {std::uint64_t{1}, std::uint64_t{100}, std::uint64_t{2500}, kN}) {
    EXPECT_EQ(list.rank(probe), dense.rank(probe));
  }
}

TEST_F(IdentityListTest, SetFlipsBitsBothWays) {
  IdentityList list(kN, beacon_);
  list.insert(100);
  list.insert(200);
  const auto before = list.summarize(Interval(1, kN));
  list.set(100, false);
  EXPECT_EQ(list.summarize(Interval(1, kN)).count, 1u);
  list.set(100, true);
  const auto after = list.summarize(Interval(1, kN));
  EXPECT_EQ(after, before);
  list.set(300, true);
  EXPECT_EQ(list.size(), 3u);
  list.set(999, false);  // absent: no-op
  EXPECT_EQ(list.size(), 3u);
}

TEST_F(IdentityListTest, SegmentAdditivity) {
  // fingerprint([1,N]) = fp([1,mid]) + fp([mid+1,N]) in the field.
  IdentityList list(kN, beacon_);
  Xoshiro256 rng(11);
  for (int i = 0; i < 300; ++i) list.insert(1 + rng.below(kN));
  const auto whole = list.summarize(Interval(1, kN));
  const auto left = list.summarize(Interval(1, kN / 2));
  const auto right = list.summarize(Interval(kN / 2 + 1, kN));
  EXPECT_EQ(whole.count, left.count + right.count);
  EXPECT_EQ(whole.fingerprint,
            hashing::m61_add(left.fingerprint, right.fingerprint));
}

TEST_F(IdentityListTest, IdsInReturnsExactWindow) {
  IdentityList list(kN, beacon_);
  for (std::uint64_t id : {10ULL, 20ULL, 30ULL, 40ULL}) list.insert(id);
  const auto window = list.ids_in(Interval(15, 35));
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0], 20u);
  EXPECT_EQ(window[1], 30u);
  EXPECT_EQ(list.ids_in(Interval(41, kN)).size(), 0u);
  EXPECT_EQ(list.ids_in(Interval(10, 10)).size(), 1u);
}

TEST_F(IdentityListTest, TwoListsSameContentSameFingerprints) {
  IdentityList a(kN, beacon_), b(kN, beacon_);
  Xoshiro256 rng(12);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(1 + rng.below(kN));
  for (auto id : ids) a.insert(id);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) b.insert(*it);
  for (std::uint64_t span : {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{100}, kN}) {
    for (std::uint64_t lo = 1; lo + span - 1 <= kN; lo += kN / 7 + 1) {
      const Interval j(lo, lo + span - 1);
      ASSERT_EQ(a.summarize(j), b.summarize(j));
    }
  }
}

TEST_F(IdentityListTest, RandomInterleavingsMatchDenseAcrossBucketSplits) {
  // The bucketed representation maintains per-leaf fingerprint aggregates
  // incrementally (inserts add a coefficient, removals subtract it — m61
  // addition is a group). A tiny bucket capacity forces constant leaf
  // splits and leaf removals, and a long random interleaving of inserts
  // and erases must track the dense BitVec + reference hash at every step.
  constexpr std::uint64_t kSmallN = 700;
  IdentityList list(kSmallN, beacon_, /*bucket_capacity=*/8);
  BitVec dense(kSmallN);
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> present;
  for (int step = 0; step < 4000; ++step) {
    if (present.empty() || rng.chance(0.6)) {
      const std::uint64_t id = 1 + rng.below(kSmallN);
      list.insert(id);
      if (!dense.test(id - 1)) present.push_back(id);
      dense.set(id - 1);
    } else {
      const std::size_t at = rng.below(present.size());
      const std::uint64_t id = present[at];
      list.set(id, false);
      dense.set(id - 1, false);
      present[at] = present.back();
      present.pop_back();
    }
    if (step % 97 != 0) continue;
    ASSERT_EQ(list.size(), dense.count()) << "step " << step;
    std::uint64_t lo = 1 + rng.below(kSmallN);
    std::uint64_t hi = 1 + rng.below(kSmallN);
    if (lo > hi) std::swap(lo, hi);
    const auto s = list.summarize(Interval(lo, hi));
    ASSERT_EQ(s.count, dense.count_range(lo - 1, hi - 1)) << "step " << step;
    ASSERT_EQ(s.fingerprint, reference_.of_range(dense, lo - 1, hi - 1))
        << "step " << step;
    ASSERT_EQ(list.rank(hi), dense.rank(hi - 1)) << "step " << step;
    const auto window = list.ids_in(Interval(lo, hi));
    ASSERT_EQ(window.size(), s.count) << "step " << step;
    ASSERT_EQ(reference_.of_ids(window), s.fingerprint) << "step " << step;
  }
  EXPECT_GT(list.bucket_count(), 4u);  // capacity 8 must have forced splits
}

TEST_F(IdentityListTest, BucketCapacityIsObservationallyInvisible) {
  // Same contents, radically different leaf layouts: every summary, rank
  // and window must agree (the protocol never sees bucket boundaries).
  Xoshiro256 rng(78);
  IdentityList tiny(kN, beacon_, 2), small(kN, beacon_, 16),
      wide(kN, beacon_, 4096);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t id = 1 + rng.below(kN);
    tiny.insert(id);
    small.insert(id);
    wide.insert(id);
  }
  EXPECT_GT(tiny.bucket_count(), small.bucket_count());
  EXPECT_EQ(wide.bucket_count(), 1u);
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t lo = 1 + rng.below(kN);
    std::uint64_t hi = 1 + rng.below(kN);
    if (lo > hi) std::swap(lo, hi);
    const Interval j(lo, hi);
    ASSERT_EQ(tiny.summarize(j), small.summarize(j));
    ASSERT_EQ(tiny.summarize(j), wide.summarize(j));
    ASSERT_EQ(tiny.ids_in(j), small.ids_in(j));
    ASSERT_EQ(tiny.rank(hi), wide.rank(hi));
  }
}

TEST_F(IdentityListTest, SharedCacheMatchesPrivateBeaconInstance) {
  // One memoized coefficient cache shared across lists (the per-run cache
  // of run_byz_renaming) must produce the same hashes as a private
  // beacon-backed instance with the same seed.
  const auto cache = hashing::make_coefficient_cache(4242);
  hashing::SharedRandomness beacon(4242);
  IdentityList cached(kN, cache), direct(kN, beacon);
  IdentityList cached2(kN, cache);  // second list sharing the same cache
  Xoshiro256 rng(79);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t id = 1 + rng.below(kN);
    cached.insert(id);
    direct.insert(id);
    cached2.insert(id);
  }
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t lo = 1 + rng.below(kN);
    std::uint64_t hi = 1 + rng.below(kN);
    if (lo > hi) std::swap(lo, hi);
    const Interval j(lo, hi);
    ASSERT_EQ(cached.summarize(j), direct.summarize(j));
    ASSERT_EQ(cached2.summarize(j), direct.summarize(j));
  }
  EXPECT_GT(cache->materialized(), 0u);
}

TEST_F(IdentityListTest, DiffersAtSingleIdDetected) {
  IdentityList a(kN, beacon_), b(kN, beacon_);
  for (std::uint64_t id = 5; id <= kN; id += 13) {
    a.insert(id);
    b.insert(id);
  }
  b.insert(1234);  // one extra identity
  EXPECT_NE(a.summarize(Interval(1, kN)), b.summarize(Interval(1, kN)));
  // Drill down: exactly the root-to-leaf path containing 1234 differs.
  Interval j(1, kN);
  int depth = 0;
  while (!j.singleton()) {
    EXPECT_NE(a.summarize(j).fingerprint, b.summarize(j).fingerprint);
    const Interval sibling = j.bot().contains(1234) ? j.top() : j.bot();
    EXPECT_EQ(a.summarize(sibling), b.summarize(sibling));
    j = j.bot().contains(1234) ? j.bot() : j.top();
    ++depth;
  }
  EXPECT_EQ(a.summarize(j).count + 1, b.summarize(j).count);
  EXPECT_GT(depth, 5);
}

}  // namespace
}  // namespace renaming::byzantine
