// White-box unit tests for CrashNode: each sub-round's behaviour is checked
// against Figures 1-3 by feeding hand-crafted inboxes and inspecting the
// outbox — no engine, no randomness in the checked paths (the election
// probability is pinned to 1 via the constant).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "crash/crash_renaming.h"

namespace renaming::crash {
namespace {

SystemConfig fixed_config() {
  SystemConfig cfg;
  cfg.n = 4;
  cfg.namespace_size = 1000;
  cfg.ids = {100, 200, 300, 400};  // node v has id 100*(v+1)
  cfg.seed = 1;
  return cfg;
}

CrashParams always_elected() {
  CrashParams p;
  p.election_constant = 1e9;  // probability clamps to 1: deterministic
  return p;
}

sim::Message status(NodeIndex sender, OriginalId id, Interval i,
                    std::uint32_t d, std::uint32_t p) {
  auto m = sim::make_message(static_cast<sim::MsgKind>(Tag::kStatus), 64, id,
                             i.lo, i.hi, d, p);
  m.sender = sender;
  m.claimed_sender = sender;
  return m;
}

sim::Message committee_notice(NodeIndex sender, OriginalId id) {
  auto m = sim::make_message(static_cast<sim::MsgKind>(Tag::kCommittee), 16,
                             id);
  m.sender = sender;
  m.claimed_sender = sender;
  return m;
}

sim::Message response(NodeIndex sender, OriginalId dest_id, Interval i,
                      std::uint32_t d, std::uint32_t p) {
  auto m = sim::make_message(static_cast<sim::MsgKind>(Tag::kResponse), 64,
                             dest_id, i.lo, i.hi, d, p);
  m.sender = sender;
  m.claimed_sender = sender;
  return m;
}

TEST(CrashNodeUnit, InitialState) {
  const auto cfg = fixed_config();
  CrashNode node(0, cfg, always_elected());
  EXPECT_EQ(node.interval(), Interval(1, 4));
  EXPECT_EQ(node.p(), 0u);
  EXPECT_EQ(node.depth(), 0u);
  EXPECT_TRUE(node.elected());  // constant pins probability to 1
  EXPECT_FALSE(node.new_id().has_value());
  EXPECT_FALSE(node.done());
}

TEST(CrashNodeUnit, Round1ElectedBroadcastsNotice) {
  const auto cfg = fixed_config();
  CrashNode node(1, cfg, always_elected());
  sim::Outbox out(1, 4);
  node.send(1, out);
  ASSERT_EQ(out.size(), 4u);  // all n links, including self
  for (const auto& [dest, msg] : out.entries()) {
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kCommittee));
    EXPECT_EQ(msg.w[0], 200u);
  }
}

TEST(CrashNodeUnit, Round2ReportsOnlyToAnnouncedLinks) {
  const auto cfg = fixed_config();
  CrashNode node(0, cfg, always_elected());
  // Round 1: notices from links 2 and 3 only.
  std::vector<sim::Message> inbox = {committee_notice(2, 300),
                                     committee_notice(3, 400)};
  node.receive(1, inbox);
  sim::Outbox out(0, 4);
  node.send(2, out);
  ASSERT_EQ(out.size(), 2u);
  out.expand();  // identical per-link reports coalesce into a kRepeat entry
  std::vector<NodeIndex> dests;
  for (const auto& [dest, msg] : out.entries()) {
    dests.push_back(dest);
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kStatus));
    EXPECT_EQ(msg.w[0], 100u);           // its own identity
    EXPECT_EQ(Interval(msg.w[1], msg.w[2]), Interval(1, 4));
  }
  std::sort(dests.begin(), dests.end());
  EXPECT_EQ(dests, (std::vector<NodeIndex>{2, 3}));
}

// Drives one committee round-3 action with a crafted mailbox and decodes
// the responses per recipient id.
std::map<OriginalId, Interval> committee_halving(
    CrashNode& member, const std::vector<sim::Message>& statuses,
    std::map<OriginalId, std::uint32_t>* depths = nullptr) {
  member.receive(1, std::vector<sim::Message>{committee_notice(0, 100)});
  member.receive(2, statuses);
  sim::Outbox out(0, 4);
  member.send(3, out);
  std::map<OriginalId, Interval> replies;
  for (const auto& [dest, msg] : out.entries()) {
    EXPECT_EQ(msg.kind, static_cast<sim::MsgKind>(Tag::kResponse));
    replies[msg.w[0]] = Interval(msg.w[1], msg.w[2]);
    if (depths != nullptr) {
      (*depths)[msg.w[0]] = static_cast<std::uint32_t>(msg.w[3]);
    }
  }
  return replies;
}

TEST(CrashNodeUnit, CommitteeHalvesByRank) {
  const auto cfg = fixed_config();
  CrashNode member(0, cfg, always_elected());
  const Interval whole(1, 4);
  std::map<OriginalId, std::uint32_t> depths;
  const auto replies = committee_halving(
      member,
      {status(0, 100, whole, 0, 0), status(1, 200, whole, 0, 0),
       status(2, 300, whole, 0, 0), status(3, 400, whole, 0, 0)},
      &depths);
  // Ranks 1,2 -> bot [1,2]; ranks 3,4 -> top [3,4]; depth advanced to 1.
  EXPECT_EQ(replies.at(100), Interval(1, 2));
  EXPECT_EQ(replies.at(200), Interval(1, 2));
  EXPECT_EQ(replies.at(300), Interval(3, 4));
  EXPECT_EQ(replies.at(400), Interval(3, 4));
  for (const auto& [id, d] : depths) EXPECT_EQ(d, 1u) << id;
}

TEST(CrashNodeUnit, CommitteeCountsOccupiedBotSlots) {
  // One node already sits inside bot([1,4]) = [1,2]; only one rank-slot of
  // bot remains, so the rank-2 node at depth 0 must go top.
  const auto cfg = fixed_config();
  CrashNode member(0, cfg, always_elected());
  const auto replies = committee_halving(
      member, {status(0, 100, Interval(1, 4), 0, 0),
               status(1, 200, Interval(1, 4), 0, 0),
               status(2, 300, Interval(1, 2), 1, 0)});
  EXPECT_EQ(replies.at(100), Interval(1, 2));  // 1 occupied + rank 1 <= 2
  EXPECT_EQ(replies.at(200), Interval(3, 4));  // 1 occupied + rank 2 > 2
  EXPECT_EQ(replies.at(300), Interval(1, 2));  // deeper: echoed unchanged
}

TEST(CrashNodeUnit, CommitteeOnlyHalvesMinimumUndecidedDepth) {
  const auto cfg = fixed_config();
  CrashNode member(0, cfg, always_elected());
  std::map<OriginalId, std::uint32_t> depths;
  const auto replies = committee_halving(
      member,
      {status(0, 100, Interval(1, 4), 0, 0),
       status(1, 200, Interval(1, 4), 0, 0),
       status(2, 300, Interval(3, 4), 1, 0)},  // ahead: must wait
      &depths);
  EXPECT_EQ(replies.at(300), Interval(3, 4));
  EXPECT_EQ(depths.at(300), 1u);  // unchanged, not advanced
  EXPECT_EQ(depths.at(100), 1u);  // halved: 0 -> 1
}

TEST(CrashNodeUnit, SingletonsDoNotPinMinimumDepth) {
  // A decided node at depth 1 (singleton [3,3]) must not stop the
  // depth-2 nodes from halving (the Definition 2.1 subtlety).
  const auto cfg = fixed_config();
  CrashNode member(0, cfg, always_elected());
  std::map<OriginalId, std::uint32_t> depths;
  const auto replies = committee_halving(
      member,
      {status(0, 100, Interval(1, 2), 2, 0),
       status(1, 200, Interval(1, 2), 2, 0),
       status(2, 300, Interval(3, 3), 1, 0)},  // decided leaf, shallower
      &depths);
  EXPECT_EQ(replies.at(100), Interval(1, 1));
  EXPECT_EQ(replies.at(200), Interval(2, 2));
  EXPECT_EQ(replies.at(300), Interval(3, 3));  // echoed, never "halved"
  EXPECT_EQ(depths.at(100), 3u);
}

TEST(CrashNodeUnit, NodeAdoptsDeepestThenLeftmostResponse) {
  const auto cfg = fixed_config();
  CrashParams params;
  params.election_constant = 0.0;  // never elected: pure NodeAction
  CrashNode node(0, cfg, params);
  node.receive(1, std::vector<sim::Message>{committee_notice(1, 200)});
  node.receive(2, std::vector<sim::Message>{});
  std::vector<sim::Message> responses = {
      response(1, 100, Interval(3, 4), 1, 0),
      response(2, 100, Interval(1, 2), 1, 0),  // same depth, smaller lo
      response(3, 100, Interval(1, 4), 0, 0),  // shallower: ignored
  };
  node.receive(3, responses);
  EXPECT_EQ(node.interval(), Interval(1, 2));
  EXPECT_EQ(node.depth(), 1u);
}

TEST(CrashNodeUnit, DecidedNodeKeepsIntervalButTracksP) {
  const auto cfg = fixed_config();
  CrashParams params;
  params.election_constant = 0.0;
  CrashNode node(0, cfg, params);
  // Drive to a decided state: adopt singleton response.
  node.receive(1, std::vector<sim::Message>{committee_notice(1, 200)});
  node.receive(2, {});
  node.receive(3, std::vector<sim::Message>{
                      response(1, 100, Interval(2, 2), 2, 0)});
  ASSERT_EQ(node.new_id(), NewId{2});
  // Later response with a different interval must not move it, but a
  // larger p must still propagate.
  node.receive(4, std::vector<sim::Message>{committee_notice(1, 200)});
  node.receive(5, {});
  node.receive(6, std::vector<sim::Message>{
                      response(1, 100, Interval(3, 3), 2, 5)});
  EXPECT_EQ(node.new_id(), NewId{2});
  EXPECT_EQ(node.p(), 5u);
}

TEST(CrashNodeUnit, NoResponsesBumpsP) {
  const auto cfg = fixed_config();
  CrashParams params;
  params.election_constant = 0.0;
  CrashNode node(2, cfg, params);
  EXPECT_EQ(node.p(), 0u);
  for (Round r = 1; r <= 6; ++r) node.receive(r, {});
  EXPECT_EQ(node.p(), 2u);  // one bump per committee-less phase
}

TEST(CrashNodeUnit, ResponsesForOtherIdsAreIgnored) {
  const auto cfg = fixed_config();
  CrashParams params;
  params.election_constant = 0.0;
  CrashNode node(0, cfg, params);
  node.receive(1, std::vector<sim::Message>{committee_notice(1, 200)});
  node.receive(2, {});
  // A response addressed to id 200 reaches node 0 (misrouted/Byzantine-ish).
  node.receive(3, std::vector<sim::Message>{
                      response(1, 200, Interval(3, 4), 1, 0)});
  // Treated as "no response for me": p bumped, interval unchanged.
  EXPECT_EQ(node.interval(), Interval(1, 4));
  EXPECT_EQ(node.p(), 1u);
}

TEST(CrashNodeUnit, CommitteeAbsorbsMaxP) {
  const auto cfg = fixed_config();
  CrashNode member(0, cfg, always_elected());
  member.receive(1, std::vector<sim::Message>{committee_notice(0, 100)});
  member.receive(2, std::vector<sim::Message>{
                        status(0, 100, Interval(1, 4), 0, 0),
                        status(1, 200, Interval(1, 4), 0, 3)});
  EXPECT_EQ(member.p(), 3u);
  // And it is stamped into the responses.
  sim::Outbox out(0, 4);
  member.send(3, out);
  for (const auto& [dest, msg] : out.entries()) {
    EXPECT_EQ(static_cast<std::uint32_t>(msg.w[4]), 3u);
  }
}

TEST(CrashNodeUnit, DoneAfterAllPhases) {
  const auto cfg = fixed_config();  // n = 4 -> 3 * 2 phases * 3 rounds = 18
  CrashParams params;
  params.election_constant = 0.0;
  CrashNode node(0, cfg, params);
  for (Round r = 1; r <= 18; ++r) {
    EXPECT_FALSE(node.done()) << r;
    node.receive(r, {});
  }
  EXPECT_TRUE(node.done());
}

}  // namespace
}  // namespace renaming::crash
