// Live-observability layer: heartbeat, shard profiler, metric edges
// (docs/OBSERVABILITY.md §8).
//
// Three contracts are pinned here:
//   * instrument edges — LogHistogram::percentile on zero observations,
//     a saturated single bucket and a 1-sample series; MetricsRegistry
//     address stability and ordered export; the RoundRing flight-recorder
//     policy behind Telemetry::set_per_round_capacity;
//   * the Progress heartbeat itself — round cadence, the closing
//     catch-up sample, ring overwrite, and the deterministic_only
//     projection of write_record;
//   * the house determinism contract — a run with a Progress heartbeat
//     AND a ShardProfile attached produces byte-identical traces,
//     journals and RunStats to the bare run at every shard count, and
//     the heartbeat's deterministic projection (round, events, active
//     set, crashes) is itself byte-identical across thread counts and
//     engine modes. Wall time never leaks into deterministic output.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "crash/adversaries.h"
#include "crash/crash_renaming.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/shard_profile.h"
#include "obs/telemetry.h"
#include "sim/engine.h"
#include "sim/parallel/worker_pool.h"
#include "sim/trace.h"

namespace renaming {
namespace {

// --- LogHistogram percentile edges ---------------------------------------

TEST(LogHistogram, PercentileOfEmptyHistogramIsZero) {
  obs::LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(LogHistogram, SingleSampleOwnsEveryPercentile) {
  obs::LogHistogram h;
  h.add(100);  // bit_width 7 -> bucket 7, lower edge 64
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 64u) << "q=" << q;
  }
}

TEST(LogHistogram, SaturatedSingleBucketReportsItsLowerEdge) {
  obs::LogHistogram h;
  for (int i = 0; i < 100000; ++i) h.add(5);  // all in bucket 3, edge 4
  EXPECT_EQ(h.count(), 100000u);
  EXPECT_EQ(h.percentile(0.5), 4u);
  EXPECT_EQ(h.percentile(0.99), 4u);
  EXPECT_EQ(h.percentile(1.0), 4u);
}

TEST(LogHistogram, ZeroValuesLandInTheZeroBucket) {
  obs::LogHistogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.bucket(0), 2u);
}

TEST(LogHistogram, PercentileWalksBucketsCumulatively) {
  obs::LogHistogram h;
  h.add(1);                            // bucket 1, edge 1
  for (int i = 0; i < 9; ++i) h.add(1500);  // bucket 11, edge 1024
  // 10 samples: target(q) = floor(q * 9) + 1 crossings.
  EXPECT_EQ(h.percentile(0.0), 1u);    // target 1: the lone small sample
  EXPECT_EQ(h.percentile(0.5), 1024u); // target 5: inside the big bucket
  EXPECT_EQ(h.percentile(1.0), 1024u);
  // Out-of-range q clamps instead of reading past the series.
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

// --- MetricsRegistry -----------------------------------------------------

TEST(MetricsRegistry, InstrumentAddressesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter* c = &registry.counter("events");
  c->add(3);
  registry.histogram("sizes").add(7);  // unrelated growth
  EXPECT_EQ(&registry.counter("events"), c);
  EXPECT_EQ(registry.counter("events").value(), 3u);
}

TEST(MetricsRegistry, ExportsInstrumentsInNameOrder) {
  obs::MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.counter("mid");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- RoundRing / Telemetry per-round cap ---------------------------------

TEST(RoundRing, KeepsTheLastKEntriesAndCountsDrops) {
  obs::RoundRing<int> ring;
  ring.set_capacity(3);
  for (int r = 1; r <= 5; ++r) ring.push_back(r * 10);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{30, 40, 50}));
  // Entry i is round dropped() + i + 1: the journal's ring convention.
  EXPECT_EQ(ring.dropped() + 0 + 1, 3u);
}

TEST(RoundRing, CapacityZeroIsUnbounded) {
  obs::RoundRing<int> ring;
  for (int r = 0; r < 1000; ++r) ring.push_back(r);
  EXPECT_EQ(ring.size(), 1000u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Telemetry, PerRoundCapBoundsBothSeries) {
  const NodeIndex n = 64;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 21);
  obs::Telemetry capped;
  capped.set_per_round_capacity(4);
  obs::Telemetry full;
  crash::CrashParams params;
  const auto run_with = [&](obs::Telemetry* telemetry) {
    return crash::run_crash_renaming(cfg, params, nullptr, nullptr,
                                     telemetry);
  };
  const auto a = run_with(&capped);
  const auto b = run_with(&full);
  ASSERT_EQ(a.stats, b.stats);
  ASSERT_GT(full.per_round_active_senders().size(), 4u)
      << "run too short to exercise the cap";
  EXPECT_EQ(capped.per_round_active_senders().size(), 4u);
  EXPECT_EQ(capped.per_round_wall_ns().size(), 4u);
  EXPECT_GT(capped.per_round_dropped(), 0u);
  EXPECT_EQ(full.per_round_dropped(), 0u);
  // The capped ring holds exactly the tail of the uncapped series.
  const auto full_active = full.per_round_active_senders();
  const std::vector<std::uint32_t> tail(full_active.end() - 4,
                                        full_active.end());
  EXPECT_EQ(capped.per_round_active_senders(), tail);
}

// --- Progress heartbeat --------------------------------------------------

TEST(Progress, RoundCadenceSamplesEveryKthRoundPlusTheFinal) {
  obs::Progress::Options opts;
  opts.every_rounds = 3;
  opts.ring_capacity = 0;
  obs::Progress progress(opts);
  progress.begin_run(16);
  for (Round r = 1; r <= 7; ++r) {
    progress.on_round_end(r, r * 100, r * 1000, 16 - r, r, 16);
  }
  progress.end_run(7);
  const auto snaps = progress.snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].round, 3u);
  EXPECT_EQ(snaps[1].round, 6u);
  EXPECT_EQ(snaps[2].round, 7u);  // catch-up: the cadence missed round 7
  EXPECT_EQ(snaps[2].messages, 700u);
  EXPECT_EQ(snaps[2].bits, 7000u);
  // The closing sample reports an empty active set by convention.
  EXPECT_EQ(snaps[2].active_senders, 0u);
  EXPECT_EQ(progress.sampled(), 3u);
}

TEST(Progress, RingOverwriteKeepsTheMostRecentSamples) {
  obs::Progress::Options opts;
  opts.ring_capacity = 2;
  obs::Progress progress(opts);
  progress.begin_run(8);
  for (Round r = 1; r <= 5; ++r) {
    progress.on_round_end(r, r, r, 8, 0, 8);
  }
  progress.end_run(5);
  const auto snaps = progress.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].round, 4u);
  EXPECT_EQ(snaps[1].round, 5u);
  EXPECT_EQ(progress.sampled(), 5u);
  EXPECT_EQ(progress.ring_dropped(), 3u);
}

TEST(Progress, WriteRecordDeterministicProjectionDropsMeasuredFields) {
  obs::ProgressSnapshot s;
  s.round = 9;
  s.messages = 123;
  s.bits = 456;
  s.active_senders = 7;
  s.crashes = 2;
  s.outbox_live = 99;
  s.wall_ns = 1000;
  s.round_wall_ns = 100;
  s.peak_rss_bytes = 4096;
  s.events_per_sec = 5.5;
  std::ostringstream full;
  obs::Progress::write_record(full, s);
  EXPECT_NE(full.str().find("\"outboxes\":99"), std::string::npos);
  EXPECT_NE(full.str().find("\"wall_ns\":1000"), std::string::npos);
  std::ostringstream det;
  obs::Progress::write_record(det, s, /*deterministic_only=*/true);
  EXPECT_EQ(det.str(),
            "{\"round\":9,\"messages\":123,\"bits\":456,\"active\":7,"
            "\"crashes\":2}\n");
}

TEST(Progress, SinkReceivesHeaderEverySampleAndDoneLine) {
  std::ostringstream out;
  obs::Progress progress;
  progress.set_sink(&out);
  progress.set_run_info("unit");
  progress.begin_run(4);
  progress.on_round_end(1, 10, 100, 4, 0, 4);
  progress.end_run(1);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"renaming-progress-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"algorithm\":\"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"round\":1"), std::string::npos);
  EXPECT_NE(text.find("\"done\":true"), std::string::npos);
}

// --- ShardProfile: aggregation, metrics, binary format -------------------

TEST(ShardProfile, AggregatesPerPhaseTotalsAndDerivedMetrics) {
  obs::ShardProfile profile;
  profile.set_run_info("unit");
  profile.begin_run(100, 2);
  profile.on_round_begin(1);
  profile.note_shard(obs::ShardPhase::kSend, 0, 100, 200);
  profile.note_shard(obs::ShardPhase::kSend, 1, 300, 0);
  profile.note_serial(obs::ShardPhase::kDeliver, 40);
  profile.on_round_end(1);
  profile.end_run(1);

  const obs::ShardProfileData& data = profile.data();
  EXPECT_EQ(data.algorithm, "unit");
  EXPECT_EQ(data.n, 100u);
  EXPECT_EQ(data.shards, 2u);
  EXPECT_EQ(data.rounds, 1u);
  const auto& send =
      data.totals[static_cast<std::size_t>(obs::ShardPhase::kSend)];
  ASSERT_EQ(send.size(), 2u);
  EXPECT_EQ(send[0].busy_ns, 100);
  EXPECT_EQ(send[0].wait_ns, 200);
  EXPECT_EQ(send[1].busy_ns, 300);
  // Imbalance: max busy over mean busy = 300 / 200.
  EXPECT_DOUBLE_EQ(obs::shard_imbalance(data, obs::ShardPhase::kSend), 1.5);
  // Barrier share counts parallel phases only: 200 / (400 + 200).
  EXPECT_NEAR(obs::barrier_wait_share(data), 200.0 / 600.0, 1e-12);
  EXPECT_EQ(obs::straggler_shard(data), 1u);
  // The serial deliver lane accumulates on shard 0 and never waits.
  const auto& deliver =
      data.totals[static_cast<std::size_t>(obs::ShardPhase::kDeliver)];
  EXPECT_EQ(deliver[0].busy_ns, 40);
  EXPECT_EQ(deliver[0].wait_ns, 0);
}

TEST(ShardProfile, SampleRingDropsOldRoundsButKeepsTotals) {
  obs::ShardProfile::Options opts;
  opts.ring_capacity = 2;
  obs::ShardProfile profile(opts);
  profile.begin_run(10, 1);
  for (Round r = 1; r <= 3; ++r) {
    profile.on_round_begin(r);
    profile.note_shard(obs::ShardPhase::kSend, 0, 10, 0);
    profile.on_round_end(r);
  }
  profile.end_run(3);
  EXPECT_EQ(profile.data().samples.size(), 2u);
  EXPECT_EQ(profile.data().dropped_samples, 1u);
  EXPECT_EQ(profile.data().samples[0].round, 2u);
  EXPECT_EQ(profile.data().samples[1].round, 3u);
  const auto& send = profile.data()
      .totals[static_cast<std::size_t>(obs::ShardPhase::kSend)];
  EXPECT_EQ(send[0].busy_ns, 30);  // totals cover all three rounds
}

TEST(ShardProfile, BinaryFormatRoundTrips) {
  obs::ShardProfile profile;
  profile.set_run_info("roundtrip");
  profile.begin_run(64, 3);
  for (Round r = 1; r <= 4; ++r) {
    profile.on_round_begin(r);
    for (unsigned s = 0; s < 3; ++s) {
      profile.note_shard(obs::ShardPhase::kSend, s, 100 * (s + 1), 10 * s);
      profile.note_shard(obs::ShardPhase::kReceive, s, 7 * (s + 1), s);
    }
    profile.note_serial(obs::ShardPhase::kDeliver, 55);
    profile.note_serial(obs::ShardPhase::kMerge, 5);
    profile.on_round_end(r);
  }
  profile.end_run(4);

  std::stringstream buffer;
  obs::write_shard_profile_binary(buffer, profile.data());
  obs::ShardProfileData loaded;
  std::string error;
  ASSERT_TRUE(obs::read_shard_profile_binary(buffer, &loaded, &error))
      << error;
  EXPECT_EQ(loaded.algorithm, "roundtrip");
  EXPECT_EQ(loaded.n, 64u);
  EXPECT_EQ(loaded.shards, 3u);
  EXPECT_EQ(loaded.rounds, 4u);
  EXPECT_EQ(loaded.dropped_samples, 0u);
  ASSERT_EQ(loaded.samples.size(), 4u);
  for (std::size_t p = 0; p < obs::kShardPhaseCount; ++p) {
    ASSERT_EQ(loaded.totals[p].size(), profile.data().totals[p].size());
    for (std::size_t s = 0; s < loaded.totals[p].size(); ++s) {
      EXPECT_EQ(loaded.totals[p][s], profile.data().totals[p][s]);
    }
  }
  EXPECT_EQ(loaded.samples[2].round, profile.data().samples[2].round);
  EXPECT_EQ(loaded.samples[2].busy_ns, profile.data().samples[2].busy_ns);
  EXPECT_EQ(loaded.samples[2].wait_ns, profile.data().samples[2].wait_ns);
  // The derived metrics survive the trip too.
  EXPECT_DOUBLE_EQ(obs::barrier_wait_share(loaded),
                   obs::barrier_wait_share(profile.data()));
  // And the doctor's report renders from the loaded copy.
  const std::string report = obs::describe_shard_profile(loaded);
  EXPECT_NE(report.find("roundtrip"), std::string::npos);
  EXPECT_NE(report.find("barrier_wait_share"), std::string::npos);
}

TEST(ShardProfile, BinaryReaderRejectsGarbageAndTruncation) {
  obs::ShardProfileData data;
  std::string error;
  std::stringstream bad("not a shard profile at all");
  EXPECT_FALSE(obs::read_shard_profile_binary(bad, &data, &error));
  EXPECT_FALSE(error.empty());

  obs::ShardProfile profile;
  profile.begin_run(8, 1);
  profile.on_round_begin(1);
  profile.note_shard(obs::ShardPhase::kSend, 0, 1, 0);
  profile.on_round_end(1);
  profile.end_run(1);
  std::stringstream buffer;
  obs::write_shard_profile_binary(buffer, profile.data());
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  error.clear();
  EXPECT_FALSE(obs::read_shard_profile_binary(truncated, &data, &error));
  EXPECT_FALSE(error.empty());
}

// --- the determinism contract, end to end --------------------------------

struct Artifacts {
  std::string trace;
  std::string journal;
  sim::RunStats stats;
  std::string progress_det;  ///< deterministic projection of the heartbeat
};

std::string deterministic_projection(const obs::Progress& progress) {
  std::ostringstream out;
  for (const obs::ProgressSnapshot& s : progress.snapshots()) {
    obs::Progress::write_record(out, s, /*deterministic_only=*/true);
  }
  return out.str();
}

// One crash run under a mid-send CommitteeHunter (the adversary-heavy
// path), with or without the live-observability pair attached.
Artifacts run_crash(sim::parallel::ShardPlan plan, bool live) {
  const NodeIndex n = 128;
  const auto cfg = SystemConfig::random(n, 5ull * n * n, 77);
  crash::CrashParams params;
  params.election_constant = 3.0;
  auto adversary = std::make_unique<crash::CommitteeHunter>(
      20, crash::CommitteeHunter::Mode::kMidResponse, 77, 0.5);
  std::ostringstream trace_out;
  sim::JsonlTrace trace(trace_out);
  obs::Journal journal;
  obs::Progress::Options popts;
  popts.ring_capacity = 0;  // keep every sample; the runs are short
  obs::Progress progress(popts);
  obs::ShardProfile profile;
  if (live) plan.profile = &profile;
  const auto r = crash::run_crash_renaming(
      cfg, params, std::move(adversary), &trace, nullptr, &journal, plan,
      live ? &progress : nullptr);
  std::ostringstream journal_out;
  obs::write_journal_binary(journal_out, journal.data());
  if (live) {
    EXPECT_EQ(profile.data().rounds, r.stats.rounds);
    EXPECT_EQ(progress.sampled(), r.stats.rounds);
  }
  return Artifacts{trace_out.str(), journal_out.str(), r.stats,
                   deterministic_projection(progress)};
}

TEST(LiveObservability, ProfiledRunIsByteIdenticalToBareRun) {
  const Artifacts bare = run_crash({}, /*live=*/false);
  ASSERT_GT(bare.stats.crashes, 0u);
  ASSERT_FALSE(bare.trace.empty());
  sim::parallel::WorkerPool pool(4);
  for (unsigned shards : {0u, 1u, 2u, 8u}) {
    sim::parallel::ShardPlan plan;
    if (shards > 0) {
      plan.pool = &pool;
      plan.shards = shards;
    }
    const Artifacts live = run_crash(plan, /*live=*/true);
    EXPECT_EQ(bare.trace, live.trace)
        << "heartbeat/profiler perturbed the trace at K=" << shards;
    EXPECT_EQ(bare.journal, live.journal)
        << "heartbeat/profiler perturbed the journal at K=" << shards;
    EXPECT_EQ(bare.stats, live.stats)
        << "heartbeat/profiler perturbed RunStats at K=" << shards;
  }
}

TEST(LiveObservability, HeartbeatProjectionIsIdenticalAcrossThreadCounts) {
  const Artifacts serial = run_crash({}, /*live=*/true);
  ASSERT_FALSE(serial.progress_det.empty());
  sim::parallel::WorkerPool pool(4);
  for (unsigned shards : {1u, 2u, 8u}) {
    sim::parallel::ShardPlan plan;
    plan.pool = &pool;
    plan.shards = shards;
    const Artifacts parallel = run_crash(plan, /*live=*/true);
    EXPECT_EQ(serial.progress_det, parallel.progress_det)
        << "deterministic heartbeat fields diverged at K=" << shards;
  }
}

class ModeGuard {
 public:
  explicit ModeGuard(sim::EngineMode mode) {
    sim::Engine::set_default_mode(mode);
  }
  ~ModeGuard() { sim::Engine::set_default_mode(sim::EngineMode::kAuto); }
};

TEST(LiveObservability, HeartbeatProjectionIsIdenticalAcrossEngineModes) {
  std::string dense;
  {
    ModeGuard guard(sim::EngineMode::kDense);
    dense = run_crash({}, /*live=*/true).progress_det;
  }
  std::string sparse;
  {
    ModeGuard guard(sim::EngineMode::kSparse);
    sparse = run_crash({}, /*live=*/true).progress_det;
  }
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(dense, sparse)
      << "the deterministic heartbeat projection is mode-dependent — a "
         "measured or layout-dependent field leaked into it";
}

}  // namespace
}  // namespace renaming
